//! The compile-and-measure pipeline shared by all experiments.
//!
//! Failure is structured, not fatal: [`measure`] returns a
//! [`PipelineError`] with stage provenance (alloc / checker / sim)
//! instead of panicking, allocator panics are caught and converted, and
//! a function whose CCM slot coloring fails degrades to heavyweight
//! spills recorded as [`ccm::Degradation`] events on the
//! [`Measurement`] — the paper's §3.1 fallback, applied per function.

use std::panic::{catch_unwind, AssertUnwindSafe};

use iloc::Module;
use regalloc::AllocConfig;
use sim::{MachineConfig, Metrics};

use crate::error::{PipelineError, Stage};

/// The allocation strategy under test — the three CCM methods of the
/// paper plus the no-CCM baseline.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Variant {
    /// Conventional Chaitin-Briggs; all spills to main memory.
    Baseline,
    /// Post-pass CCM allocator, no interprocedural information.
    PostPass,
    /// Post-pass CCM allocator with call-graph information.
    PostPassCallGraph,
    /// CCM spilling integrated into the Chaitin-Briggs allocator.
    Integrated,
}

impl Variant {
    /// All variants, baseline first.
    pub const ALL: [Variant; 4] = [
        Variant::Baseline,
        Variant::PostPass,
        Variant::PostPassCallGraph,
        Variant::Integrated,
    ];

    /// Column label used in the printed tables.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Baseline => "Without CCM",
            Variant::PostPass => "Post-Pass",
            Variant::PostPassCallGraph => "Post-Pass w/ Call Graph",
            Variant::Integrated => "Integrated",
        }
    }

    /// Short name used in error reports and JSON.
    pub fn short(&self) -> &'static str {
        match self {
            Variant::Baseline => "baseline",
            Variant::PostPass => "postpass",
            Variant::PostPassCallGraph => "postpass+cg",
            Variant::Integrated => "integrated",
        }
    }
}

/// One measured configuration of one module.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Dynamic cycle count.
    pub cycles: u64,
    /// Cycles spent in memory operations (main memory + CCM).
    pub mem_cycles: u64,
    /// Full metric set.
    pub metrics: Metrics,
    /// The checksum the program returned (for equivalence checking).
    pub checksum: f64,
    /// Bytes of main-memory spill space across all functions.
    pub spill_bytes: u32,
    /// Live ranges spilled during allocation.
    pub spilled_ranges: usize,
    /// Functions that fell back from CCM allocation to heavyweight
    /// spills (graceful degradation events, not errors).
    pub degraded: Vec<ccm::Degradation>,
}

/// The outcome of [`allocate_variant`]: spill statistics plus any
/// per-function degradation events.
#[derive(Clone, Debug, Default)]
pub struct AllocOutcome {
    /// Live ranges spilled during allocation.
    pub spilled_ranges: usize,
    /// Functions that abandoned CCM allocation and kept conventional
    /// heavyweight spills.
    pub degraded: Vec<ccm::Degradation>,
}

/// Applies `variant` allocation (with CCM capacity `ccm_size`) to an
/// optimized module. The input should come from
/// [`suite::build_optimized`] or [`suite::build_program`].
pub fn allocate_variant(m: &mut Module, variant: Variant, ccm_size: u32) -> AllocOutcome {
    let cfg = AllocConfig::default();
    let postpass = |m: &mut Module, interprocedural: bool| -> AllocOutcome {
        let n = regalloc::allocate_module(m, &cfg).total_spilled();
        let promos = ccm::postpass_promote(
            m,
            &ccm::PostpassConfig {
                ccm_size,
                interprocedural,
            },
        );
        AllocOutcome {
            spilled_ranges: n,
            degraded: promos
                .into_iter()
                .filter_map(|p| {
                    p.degraded.map(|reason| ccm::Degradation {
                        function: p.name,
                        reason,
                    })
                })
                .collect(),
        }
    };
    match variant {
        Variant::Baseline => AllocOutcome {
            spilled_ranges: regalloc::allocate_module(m, &cfg).total_spilled(),
            degraded: Vec::new(),
        },
        Variant::PostPass => postpass(m, false),
        Variant::PostPassCallGraph => postpass(m, true),
        Variant::Integrated => {
            let (a, _, degraded) = ccm::allocate_module_integrated(m, &cfg, ccm_size);
            AllocOutcome {
                spilled_ranges: a.total_spilled(),
                degraded,
            }
        }
    }
}

/// Runs the post-allocation static checker on an allocated module,
/// returning every diagnostic (the structural verifier is one of its
/// passes, so this subsumes `m.verify()`).
pub fn check_allocated(m: &Module, ccm_size: u32) -> Vec<checker::Diagnostic> {
    checker::check_module(m, &checker::CheckerConfig::new(ccm_size))
}

/// [`allocate_variant`] with allocator panics contained: a panic inside
/// register allocation or CCM promotion becomes a `stage=alloc`
/// [`PipelineError`] instead of unwinding through the campaign.
///
/// # Errors
///
/// Returns the structured allocation failure.
pub fn allocate_contained(
    m: &mut Module,
    unit: &str,
    variant: Variant,
    ccm_size: u32,
) -> Result<AllocOutcome, PipelineError> {
    let mut scratch = std::mem::take(m);
    match catch_unwind(AssertUnwindSafe(move || {
        let out = allocate_variant(&mut scratch, variant, ccm_size);
        (scratch, out)
    })) {
        Ok((allocated, out)) => {
            *m = allocated;
            Ok(out)
        }
        Err(payload) => {
            Err(
                PipelineError::new(Stage::Alloc, unit, exec::render_payload(payload.as_ref()))
                    .at(variant, ccm_size),
            )
        }
    }
}

/// Converts checker diagnostics into a `stage=checker` error when any
/// has error severity.
///
/// # Errors
///
/// Returns the structured checker rejection.
pub fn checker_gate(
    diags: &[checker::Diagnostic],
    unit: &str,
    variant: Variant,
    ccm_size: u32,
) -> Result<(), PipelineError> {
    if !checker::has_errors(diags) {
        return Ok(());
    }
    let errors = checker::errors(diags);
    Err(PipelineError::new(
        Stage::Checker,
        unit,
        format!(
            "{} checker error(s); first: {}",
            errors.len(),
            errors.first().map(|d| d.to_string()).unwrap_or_default()
        ),
    )
    .at(variant, ccm_size))
}

/// Allocates (per `variant`) and simulates an optimized module, returning
/// the measurement. `machine` controls CCM size and any cache model.
///
/// # Errors
///
/// Every stage failure is structured: an allocator panic becomes
/// `stage=alloc`, a checker rejection `stage=checker`, and a simulator
/// trap (unknown global, out-of-bounds access, exhausted `--sim-budget`)
/// `stage=sim`. CCM coloring failures are *not* errors — the affected
/// function degrades to heavyweight spills and the event is recorded in
/// [`Measurement::degraded`].
pub fn measure(
    m: Module,
    variant: Variant,
    machine: &MachineConfig,
) -> Result<Measurement, PipelineError> {
    measure_named("<module>", m, variant, machine)
}

/// [`measure`] with the suite unit's name attached to any failure.
///
/// # Errors
///
/// Same as [`measure`].
pub fn measure_named(
    unit: &str,
    mut m: Module,
    variant: Variant,
    machine: &MachineConfig,
) -> Result<Measurement, PipelineError> {
    let alloc = allocate_contained(&mut m, unit, variant, machine.ccm_size)?;
    let diags = check_allocated(&m, machine.ccm_size);
    checker_gate(&diags, unit, variant, machine.ccm_size)?;
    let (vals, metrics) = sim::run_module(&m, machine.clone(), "main").map_err(|e| {
        PipelineError::new(Stage::Sim, unit, e.to_string()).at(variant, machine.ccm_size)
    })?;
    let spill_bytes = m.functions.iter().map(|f| f.frame.spill_bytes()).sum();
    Ok(Measurement {
        cycles: metrics.cycles,
        mem_cycles: metrics.mem_op_cycles,
        metrics,
        checksum: vals.floats.first().copied().unwrap_or(f64::NAN),
        spill_bytes,
        spilled_ranges: alloc.spilled_ranges,
        degraded: alloc.degraded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn must(m: Result<Measurement, PipelineError>) -> Measurement {
        m.unwrap_or_else(|e| panic!("measurement failed: {e}"))
    }

    #[test]
    fn variants_agree_on_checksum_and_ccm_wins() {
        let k = suite::kernel("radf5").unwrap();
        let m = suite::build_optimized(&k);
        let machine = MachineConfig::with_ccm(512);
        let base = must(measure(m.clone(), Variant::Baseline, &machine));
        assert!(base.spilled_ranges > 0, "radf5 must spill");
        assert!(base.degraded.is_empty(), "nothing degrades unprovoked");
        for v in [
            Variant::PostPass,
            Variant::PostPassCallGraph,
            Variant::Integrated,
        ] {
            let r = must(measure(m.clone(), v, &machine));
            assert_eq!(
                r.checksum.to_bits(),
                base.checksum.to_bits(),
                "{v:?} changed the checksum"
            );
            assert!(
                r.cycles <= base.cycles,
                "{v:?} slower than baseline: {} vs {}",
                r.cycles,
                base.cycles
            );
        }
    }

    #[test]
    fn non_spilling_kernel_unaffected() {
        let k = suite::kernel("efill").unwrap();
        let m = suite::build_optimized(&k);
        let machine = MachineConfig::with_ccm(512);
        let base = must(measure(m.clone(), Variant::Baseline, &machine));
        assert_eq!(base.spilled_ranges, 0);
        let pp = must(measure(m.clone(), Variant::PostPassCallGraph, &machine));
        assert_eq!(pp.cycles, base.cycles);
        assert_eq!(pp.metrics.ccm_ops, 0);
    }

    #[test]
    fn step_limit_surfaces_as_sim_stage_error() {
        let k = suite::kernel("radf5").unwrap();
        let m = suite::build_optimized(&k);
        let machine = MachineConfig {
            max_steps: 10,
            ..MachineConfig::with_ccm(512)
        };
        let err = measure(m, Variant::Baseline, &machine).unwrap_err();
        assert_eq!(err.stage, Stage::Sim);
        assert!(err.detail.contains("step limit"), "{err}");
    }
}
