//! The structured error spine of the compile-and-measure pipeline.
//!
//! Every stage failure — a parse error, an allocator panic, a checker
//! rejection, a simulator trap, a corrupt cache entry, a contained
//! worker panic — becomes a [`PipelineError`] carrying its stage
//! provenance and the (unit, variant, CCM) coordinates of the
//! measurement that failed. Experiment drivers *record* errors into the
//! process-wide [`record`] sink and keep going: the failing row is
//! dropped from the table, every remaining experiment still runs, and
//! `repro` drains the sink at the end of the run into an aggregated
//! report (text on stderr, JSON with `--errors-json`), exiting nonzero
//! only then.
//!
//! The sink is drained in sorted order ([`drain`]), so the end-of-run
//! report is byte-identical at any `--jobs` count even though workers
//! record concurrently.

use std::fmt;
use std::sync::Mutex;

use crate::pipeline::Variant;

/// Which pipeline stage a failure came from.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Stage {
    /// Reading or parsing ILOC input.
    Parse,
    /// Building or optimizing a suite unit.
    Opt,
    /// Register allocation / CCM promotion.
    Alloc,
    /// The post-allocation static checker rejected the module.
    Checker,
    /// The simulator trapped (unknown global, bounds, step limit, …).
    Sim,
    /// The memoization layer detected a corrupt entry.
    Cache,
    /// The parallel engine contained a worker panic.
    Exec,
}

impl Stage {
    /// The lowercase name used in reports (`stage=alloc`).
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Opt => "opt",
            Stage::Alloc => "alloc",
            Stage::Checker => "checker",
            Stage::Sim => "sim",
            Stage::Cache => "cache",
            Stage::Exec => "exec",
        }
    }
}

/// One structured pipeline failure: the stage it came from, the
/// coordinates of the measurement, and a human-readable detail line.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct PipelineError {
    /// Suite unit (kernel/program), file, or experiment item that failed.
    pub unit: String,
    /// The allocation variant being measured, when one was in play.
    pub variant: Option<&'static str>,
    /// The CCM capacity being measured, when one was in play.
    pub ccm: Option<u32>,
    /// Stage provenance.
    pub stage: Stage,
    /// What happened (panic payload, trap, first checker error, …).
    pub detail: String,
}

impl PipelineError {
    /// A failure with no variant/CCM coordinates.
    pub fn new(stage: Stage, unit: impl Into<String>, detail: impl Into<String>) -> PipelineError {
        PipelineError {
            stage,
            unit: unit.into(),
            variant: None,
            ccm: None,
            detail: detail.into(),
        }
    }

    /// Attaches the (variant, CCM size) coordinates of a measurement.
    pub fn at(mut self, variant: Variant, ccm: u32) -> PipelineError {
        self.variant = Some(variant.short());
        self.ccm = Some(ccm);
        self
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[stage={}] {}", self.stage.name(), self.unit)?;
        if let Some(v) = self.variant {
            write!(f, "/{v}")?;
        }
        if let Some(c) = self.ccm {
            write!(f, " @{c}B")?;
        }
        write!(f, ": {}", self.detail)
    }
}

fn sink() -> &'static Mutex<Vec<PipelineError>> {
    static SINK: Mutex<Vec<PipelineError>> = Mutex::new(Vec::new());
    &SINK
}

/// Records a failure into the end-of-run report and returns it back (so
/// `record(e)` composes with `.map_err(record)` chains).
pub fn record(e: PipelineError) -> PipelineError {
    sink()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .push(e.clone());
    e
}

/// Drains every recorded failure, sorted (unit, variant, ccm, stage,
/// detail) so the report is independent of worker scheduling. Duplicate
/// records (the same failure hit via several experiments) are collapsed.
pub fn drain() -> Vec<PipelineError> {
    let mut v = std::mem::take(&mut *sink().lock().unwrap_or_else(|p| p.into_inner()));
    v.sort();
    v.dedup();
    v
}

/// How many failures are currently recorded (without draining them).
pub fn recorded() -> usize {
    sink().lock().unwrap_or_else(|p| p.into_inner()).len()
}

/// Renders the end-of-run failure report as text.
pub fn render_text(errors: &[PipelineError]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "pipeline failures: {}", errors.len());
    for e in errors {
        let _ = writeln!(s, "  {e}");
    }
    s
}

/// Renders the failure report as a JSON array (`--errors-json`).
pub fn render_json(errors: &[PipelineError]) -> String {
    use std::fmt::Write as _;
    let esc = |s: &str| {
        s.chars()
            .flat_map(|c| match c {
                '"' => "\\\"".chars().collect::<Vec<_>>(),
                '\\' => "\\\\".chars().collect(),
                '\n' => "\\n".chars().collect(),
                '\t' => "\\t".chars().collect(),
                c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                c => vec![c],
            })
            .collect::<String>()
    };
    let mut s = String::from("[");
    for (i, e) in errors.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ =
            write!(
            s,
            "\n{{\"stage\":\"{}\",\"unit\":\"{}\",\"variant\":{},\"ccm\":{},\"detail\":\"{}\"}}",
            e.stage.name(),
            esc(&e.unit),
            e.variant
                .map(|v| format!("\"{}\"", esc(v)))
                .unwrap_or_else(|| "null".to_string()),
            e.ccm.map(|c| c.to_string()).unwrap_or_else(|| "null".to_string()),
            esc(&e.detail)
        );
    }
    s.push_str("\n]\n");
    s
}

/// Renders a caught panic payload for a `PipelineError` detail line.
pub fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    exec::render_payload(payload)
}

/// Fans `items` out over the parallel engine with full containment:
/// an item whose closure returns `Err` has its [`PipelineError`]
/// [`record`]ed, and an item whose worker *panics* past the closure's
/// own containment is recorded as a `stage=exec` failure. Either way
/// the item's slot is `None` and every other item still completes, in
/// index order, independent of `jobs`.
pub fn par_contained<T, U, L, F>(jobs: usize, items: &[U], label: L, f: F) -> Vec<Option<T>>
where
    T: Send,
    U: Sync,
    L: Fn(&U) -> String + Sync,
    F: Fn(&U) -> Result<T, PipelineError> + Sync,
{
    exec::par_map_contained(jobs, items, label, f)
        .into_iter()
        .map(|r| match r {
            Ok(Ok(v)) => Some(v),
            Ok(Err(e)) => {
                record(e);
                None
            }
            Err(fail) => {
                record(PipelineError::new(
                    Stage::Exec,
                    fail.label.clone(),
                    format!("worker panic: {}", fail.message),
                ));
                None
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_all_coordinates() {
        let e = PipelineError::new(Stage::Alloc, "radf5", "injected allocator panic")
            .at(Variant::PostPassCallGraph, 512);
        let s = e.to_string();
        assert!(s.contains("stage=alloc") && s.contains("radf5"));
        assert!(s.contains("Post-Pass w/ Call Graph") || s.contains("@512B"));
    }

    #[test]
    fn sink_drains_sorted_and_deduped() {
        // The sink is process-global; drain whatever other tests left.
        drain();
        record(PipelineError::new(Stage::Sim, "zzz", "b"));
        record(PipelineError::new(Stage::Sim, "aaa", "a"));
        record(PipelineError::new(Stage::Sim, "aaa", "a"));
        let got = drain();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].unit, "aaa");
        assert_eq!(recorded(), 0);
    }

    #[test]
    fn json_escapes_and_renders_nulls() {
        let e = PipelineError::new(Stage::Checker, "k\"1", "line1\nline2");
        let json = render_json(&[e]);
        assert!(json.contains("\"stage\":\"checker\""));
        assert!(json.contains("k\\\"1"));
        assert!(json.contains("line1\\nline2"));
        assert!(json.contains("\"variant\":null"));
    }
}
