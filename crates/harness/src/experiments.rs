//! The experiments: one function per table/figure of the paper.

use sim::{CacheConfig, MachineConfig};

use crate::pipeline::{measure, Measurement, Variant};

/// Table 1 row: spill-memory compaction for one routine.
#[derive(Clone, Debug)]
pub struct CompactionRow {
    /// Routine name.
    pub name: String,
    /// Bytes of spill memory before compaction.
    pub before: u32,
    /// Bytes after compaction.
    pub after: u32,
}

impl CompactionRow {
    /// The paper's `after/before` ratio.
    pub fn ratio(&self) -> f64 {
        if self.before == 0 {
            1.0
        } else {
            self.after as f64 / self.before as f64
        }
    }
}

/// Runs the Table 1 experiment: Chaitin-Briggs allocation followed by
/// coloring-based spill-memory compaction, reporting bytes before/after
/// per spilling routine, sorted by descending `before`.
pub fn table1() -> Vec<CompactionRow> {
    let mut rows = Vec::new();
    for k in suite::kernels() {
        let mut m = suite::build_optimized(&k);
        regalloc::allocate_module(&mut m, &regalloc::AllocConfig::default());
        let before: u32 = m.functions.iter().map(|f| f.frame.spill_bytes()).sum();
        if before == 0 {
            continue;
        }
        ccm::compact_module(&mut m);
        let after: u32 = m.functions.iter().map(|f| f.frame.spill_bytes()).sum();
        // Correctness guard: compaction must not change results.
        let (v, _) = sim::run_module(&m, MachineConfig::default(), "main")
            .unwrap_or_else(|e| panic!("{} trapped after compaction: {e}", k.name));
        assert!(v.floats[0].is_finite());
        rows.push(CompactionRow {
            name: k.name.to_string(),
            before,
            after,
        });
    }
    rows.sort_by(|a, b| b.before.cmp(&a.before).then(a.name.cmp(&b.name)));
    rows
}

/// Table 2/3 row: per-routine dynamic cycles for every variant.
#[derive(Clone, Debug)]
pub struct SpeedupRow {
    /// Routine name.
    pub name: String,
    /// Baseline measurement (absolute cycles).
    pub baseline: Measurement,
    /// Post-pass (intraprocedural) measurement.
    pub postpass: Measurement,
    /// Post-pass with call graph.
    pub postpass_cg: Measurement,
    /// Integrated allocator.
    pub integrated: Measurement,
}

impl SpeedupRow {
    /// Relative cycles of `m` vs. the baseline.
    pub fn rel(&self, m: &Measurement) -> f64 {
        m.cycles as f64 / self.baseline.cycles as f64
    }

    /// Relative memory-operation cycles of `m` vs. the baseline.
    pub fn rel_mem(&self, m: &Measurement) -> f64 {
        m.mem_cycles as f64 / self.baseline.mem_cycles.max(1) as f64
    }

    /// The three CCM measurements, in the paper's column order.
    pub fn ccm_variants(&self) -> [&Measurement; 3] {
        [&self.postpass, &self.postpass_cg, &self.integrated]
    }
}

/// Runs the Table 2 experiment at the given CCM size over every kernel
/// that spills: absolute baseline cycles plus relative cycle counts for
/// the three CCM allocation methods.
pub fn speedup_rows(ccm_size: u32) -> Vec<SpeedupRow> {
    let machine = MachineConfig::with_ccm(ccm_size);
    let mut rows = Vec::new();
    for k in suite::kernels() {
        let m = suite::build_optimized(&k);
        let baseline = measure(m.clone(), Variant::Baseline, &machine);
        if baseline.spilled_ranges == 0 {
            continue; // the paper reports only routines that spill
        }
        let postpass = measure(m.clone(), Variant::PostPass, &machine);
        let postpass_cg = measure(m.clone(), Variant::PostPassCallGraph, &machine);
        let integrated = measure(m, Variant::Integrated, &machine);
        for (v, r) in [
            ("post-pass", &postpass),
            ("post-pass/cg", &postpass_cg),
            ("integrated", &integrated),
        ] {
            assert_eq!(
                r.checksum.to_bits(),
                baseline.checksum.to_bits(),
                "{}: {v} changed program output",
                k.name
            );
        }
        rows.push(SpeedupRow {
            name: k.name.to_string(),
            baseline,
            postpass,
            postpass_cg,
            integrated,
        });
    }
    rows
}

/// Table 3: kernels whose best CCM-variant cycle count improves when the
/// CCM grows from 512 to 1024 bytes. Returns `(rows512, rows1024,
/// improved_names)`.
pub fn table3() -> (Vec<SpeedupRow>, Vec<SpeedupRow>, Vec<String>) {
    let r512 = speedup_rows(512);
    let r1024 = speedup_rows(1024);
    let mut improved = Vec::new();
    for (a, b) in r512.iter().zip(&r1024) {
        debug_assert_eq!(a.name, b.name);
        let best_512 = a
            .ccm_variants()
            .iter()
            .map(|m| m.cycles)
            .min()
            .expect("three variants");
        let best_1024 = b
            .ccm_variants()
            .iter()
            .map(|m| m.cycles)
            .min()
            .expect("three variants");
        if best_1024 < best_512 {
            improved.push(a.name.clone());
        }
    }
    (r512, r1024, improved)
}

/// Table 4 cell: weighted-average percentage reductions for one
/// algorithm at one CCM size.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Table4Cell {
    /// Percent reduction in total cycles (suite-weighted).
    pub total_pct: f64,
    /// Percent reduction in memory-operation cycles.
    pub mem_pct: f64,
}

/// Computes the Table 4 weighted averages from a set of speedup rows.
/// Weighting follows the paper: total cycles across the suite (big
/// routines dominate), i.e. `100·(1 − Σ cycles_v / Σ cycles_base)`.
pub fn table4_from(rows: &[SpeedupRow]) -> [Table4Cell; 3] {
    let base_total: u64 = rows.iter().map(|r| r.baseline.cycles).sum();
    let base_mem: u64 = rows.iter().map(|r| r.baseline.mem_cycles).sum();
    let mut out = [Table4Cell {
        total_pct: 0.0,
        mem_pct: 0.0,
    }; 3];
    type Pick = for<'a> fn(&'a SpeedupRow) -> &'a Measurement;
    let picks: [Pick; 3] = [|r| &r.postpass, |r| &r.postpass_cg, |r| &r.integrated];
    for (i, pick) in picks.into_iter().enumerate() {
        let v_total: u64 = rows.iter().map(|r| pick(r).cycles).sum();
        let v_mem: u64 = rows.iter().map(|r| pick(r).mem_cycles).sum();
        out[i] = Table4Cell {
            total_pct: 100.0 * (1.0 - v_total as f64 / base_total as f64),
            mem_pct: 100.0 * (1.0 - v_mem as f64 / base_mem as f64),
        };
    }
    out
}

/// Figure 3/4 row: whole-program relative times for the three methods.
#[derive(Clone, Debug)]
pub struct ProgramRow {
    /// Program name.
    pub name: String,
    /// Baseline cycles / memory-op cycles.
    pub baseline: (u64, u64),
    /// Relative (running time, memory-op time) for post-pass,
    /// post-pass w/ call graph, and integrated, in that order.
    pub rel: [(f64, f64); 3],
}

impl ProgramRow {
    /// Whether any method improved whole-program running time by ≥ 0.5 %.
    pub fn improved(&self) -> bool {
        self.rel.iter().any(|(t, _)| *t < 0.995)
    }
}

/// Runs the Figure 3 (512 B) or Figure 4 (1024 B) experiment over the 13
/// programs.
pub fn figure(ccm_size: u32) -> Vec<ProgramRow> {
    let machine = MachineConfig::with_ccm(ccm_size);
    let mut rows = Vec::new();
    for p in suite::programs() {
        let m = suite::build_program(&p);
        let base = measure(m.clone(), Variant::Baseline, &machine);
        let mut rel = [(1.0, 1.0); 3];
        for (i, v) in [
            Variant::PostPass,
            Variant::PostPassCallGraph,
            Variant::Integrated,
        ]
        .into_iter()
        .enumerate()
        {
            let r = measure(m.clone(), v, &machine);
            assert_eq!(
                r.checksum.to_bits(),
                base.checksum.to_bits(),
                "{}: {v:?} changed program output",
                p.name
            );
            rel[i] = (
                r.cycles as f64 / base.cycles as f64,
                r.mem_cycles as f64 / base.mem_cycles.max(1) as f64,
            );
        }
        rows.push(ProgramRow {
            name: p.name.to_string(),
            baseline: (base.cycles, base.mem_cycles),
            rel,
        });
    }
    rows
}

/// §4.3 ablation result: one memory-hierarchy configuration.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Configuration label.
    pub config: String,
    /// Baseline (spills through the hierarchy) cycles and hit rate.
    pub base_cycles: u64,
    /// Baseline cache hit rate.
    pub base_hit_rate: f64,
    /// CCM (post-pass w/ call graph) cycles and hit rate.
    pub ccm_cycles: u64,
    /// CCM-variant cache hit rate.
    pub ccm_hit_rate: f64,
}

/// Runs the §4.3 "more complex execution models" ablation on a set of
/// spill-heavy kernels: a plain cache, a bigger cache, a cache with a
/// write buffer, and a cache with a victim cache — in each case comparing
/// spilling through the hierarchy against spilling to the CCM.
pub fn ablation() -> Vec<AblationRow> {
    let kernels = ["fpppp", "twldrv", "jacld", "radf5", "deseco"];
    let mut configs: Vec<(String, CacheConfig)> = Vec::new();
    let base = CacheConfig::small_direct_mapped();
    configs.push(("8K direct-mapped".into(), base.clone()));
    configs.push((
        "32K 2-way (better cache)".into(),
        CacheConfig {
            size: 32 * 1024,
            assoc: 2,
            ..base.clone()
        },
    ));
    configs.push((
        "8K DM + 8-entry write buffer".into(),
        CacheConfig {
            write_buffer: 8,
            ..base.clone()
        },
    ));
    configs.push((
        "8K DM + 4-line victim cache".into(),
        CacheConfig {
            victim_lines: 4,
            ..base
        },
    ));

    let mut rows = Vec::new();
    for (label, cache) in configs {
        let machine = MachineConfig {
            cache: Some(cache),
            ..MachineConfig::with_ccm(512)
        };
        let mut base_cycles = 0;
        let mut ccm_cycles = 0;
        let mut base_hits = (0u64, 0u64);
        let mut ccm_hits = (0u64, 0u64);
        for name in kernels {
            let k = suite::kernel(name).expect("kernel exists");
            let m = suite::build_optimized(&k);
            let b = measure(m.clone(), Variant::Baseline, &machine);
            let c = measure(m, Variant::PostPassCallGraph, &machine);
            base_cycles += b.cycles;
            ccm_cycles += c.cycles;
            base_hits.0 += b.metrics.cache.hits + b.metrics.cache.victim_hits;
            base_hits.1 +=
                b.metrics.cache.misses + b.metrics.cache.hits + b.metrics.cache.victim_hits;
            ccm_hits.0 += c.metrics.cache.hits + c.metrics.cache.victim_hits;
            ccm_hits.1 +=
                c.metrics.cache.misses + c.metrics.cache.hits + c.metrics.cache.victim_hits;
        }
        rows.push(AblationRow {
            config: label,
            base_cycles,
            base_hit_rate: base_hits.0 as f64 / base_hits.1.max(1) as f64,
            ccm_cycles,
            ccm_hit_rate: ccm_hits.0 as f64 / ccm_hits.1.max(1) as f64,
        });
    }
    rows
}

/// Checker results for one allocated suite module at one configuration.
#[derive(Clone, Debug)]
pub struct CheckRow {
    /// Kernel or program name.
    pub name: String,
    /// The allocation strategy checked.
    pub variant: Variant,
    /// CCM capacity the module was allocated for.
    pub ccm: u32,
    /// Every diagnostic the checker produced.
    pub diags: Vec<checker::Diagnostic>,
}

impl CheckRow {
    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        checker::errors(&self.diags).len()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diags.len() - self.error_count()
    }
}

/// Runs the post-allocation checker over the whole suite (every kernel
/// and every program) under each variant at each CCM size.
pub fn check_suite(sizes: &[u32]) -> Vec<CheckRow> {
    let mut units: Vec<(String, iloc::Module)> = Vec::new();
    for k in suite::kernels() {
        units.push((k.name.to_string(), suite::build_optimized(&k)));
    }
    for p in suite::programs() {
        units.push((p.name.to_string(), suite::build_program(&p)));
    }
    let mut rows = Vec::new();
    for (name, m) in &units {
        for &ccm in sizes {
            for v in Variant::ALL {
                let mut am = m.clone();
                crate::pipeline::allocate_variant(&mut am, v, ccm);
                rows.push(CheckRow {
                    name: name.clone(),
                    variant: v,
                    ccm,
                    diags: crate::pipeline::check_allocated(&am, ccm),
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reports_spilling_routines_with_valid_ratios() {
        let rows = table1();
        assert!(rows.len() >= 10, "need a healthy population of spillers");
        for r in &rows {
            assert!(r.after <= r.before, "{}: compaction grew memory", r.name);
            assert!(r.ratio() > 0.0 && r.ratio() <= 1.0);
        }
        // Aggregate shape: compaction should buy a real reduction.
        let before: u32 = rows.iter().map(|r| r.before).sum();
        let after: u32 = rows.iter().map(|r| r.after).sum();
        assert!(
            (after as f64) < 0.9 * before as f64,
            "aggregate ratio {} not < 0.9",
            after as f64 / before as f64
        );
    }

    #[test]
    fn speedups_have_paper_shape_at_512() {
        let rows = speedup_rows(512);
        assert!(rows.len() >= 10);
        // No CCM variant may ever be slower than baseline.
        for r in &rows {
            for m in r.ccm_variants() {
                assert!(
                    m.cycles <= r.baseline.cycles,
                    "{}: CCM variant slower",
                    r.name
                );
            }
            // Interprocedural post-pass dominates intraprocedural.
            assert!(r.postpass_cg.cycles <= r.postpass.cycles, "{}", r.name);
        }
        // A majority of spilling kernels should see real speedups.
        let improved = rows
            .iter()
            .filter(|r| r.rel(&r.postpass_cg) < 0.995)
            .count();
        assert!(
            improved * 2 >= rows.len(),
            "only {improved}/{} improved",
            rows.len()
        );
        let t4 = table4_from(&rows);
        // Paper: 3-6 % total-cycle reduction, 10-17 % memory-cycle
        // reduction. Accept a generous band around that shape.
        assert!(
            t4[1].total_pct > 1.0 && t4[1].total_pct < 25.0,
            "total reduction {:.1}% out of band",
            t4[1].total_pct
        );
        assert!(
            t4[1].mem_pct > 4.0 && t4[1].mem_pct < 50.0,
            "memory reduction {:.1}% out of band",
            t4[1].mem_pct
        );
        // Memory-cycle reduction always exceeds total-cycle reduction.
        for c in t4 {
            assert!(c.mem_pct >= c.total_pct);
        }
    }
}
