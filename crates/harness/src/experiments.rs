//! The experiments: one function per table/figure of the paper.
//!
//! Every sweep-shaped experiment fans out over the parallel engine
//! ([`exec::par_map`]) with one work item per independent (unit, variant
//! set, CCM size) measurement, and collects results **by item index** so
//! the output is byte-identical whatever `--jobs` value ran it. The
//! `*_jobs` variants take an explicit worker count (used by the
//! determinism tests); the plain names use [`exec::default_jobs`], which
//! the binaries set from `--jobs`.

use std::collections::HashMap;

use sim::{CacheConfig, MachineConfig};

use crate::cache;
use crate::error::{self, PipelineError, Stage};
use crate::pipeline::{Measurement, Variant};

/// Table 1 row: spill-memory compaction for one routine.
#[derive(Clone, Debug)]
pub struct CompactionRow {
    /// Routine name.
    pub name: String,
    /// Bytes of spill memory before compaction.
    pub before: u32,
    /// Bytes after compaction.
    pub after: u32,
}

impl CompactionRow {
    /// The paper's `after/before` ratio.
    pub fn ratio(&self) -> f64 {
        if self.before == 0 {
            1.0
        } else {
            self.after as f64 / self.before as f64
        }
    }
}

/// Runs the Table 1 experiment: Chaitin-Briggs allocation followed by
/// coloring-based spill-memory compaction, reporting bytes before/after
/// per spilling routine, sorted by descending `before`.
pub fn table1() -> Vec<CompactionRow> {
    table1_jobs(exec::default_jobs())
}

/// [`table1`] with an explicit worker count.
pub fn table1_jobs(jobs: usize) -> Vec<CompactionRow> {
    let kernels = suite::kernels();
    let mut rows: Vec<CompactionRow> = error::par_contained(
        jobs,
        &kernels,
        |k| format!("table1 {}", k.name),
        |k| {
            let mut m = (*cache::optimized(k)?).clone();
            regalloc::allocate_module(&mut m, &regalloc::AllocConfig::default());
            let before: u32 = m.functions.iter().map(|f| f.frame.spill_bytes()).sum();
            if before == 0 {
                return Ok(None);
            }
            ccm::compact_module(&mut m);
            let after: u32 = m.functions.iter().map(|f| f.frame.spill_bytes()).sum();
            // Correctness guard: compaction must not change results.
            let (v, _) = sim::run_module(&m, MachineConfig::default(), "main").map_err(|e| {
                PipelineError::new(Stage::Sim, k.name, format!("trapped after compaction: {e}"))
            })?;
            if !v.floats.first().is_some_and(|f| f.is_finite()) {
                return Err(PipelineError::new(
                    Stage::Sim,
                    k.name,
                    "non-finite checksum after compaction",
                ));
            }
            Ok(Some(CompactionRow {
                name: k.name.to_string(),
                before,
                after,
            }))
        },
    )
    .into_iter()
    .flatten()
    .flatten()
    .collect();
    rows.sort_by(|a, b| b.before.cmp(&a.before).then(a.name.cmp(&b.name)));
    rows
}

/// Table 2/3 row: per-routine dynamic cycles for every variant.
#[derive(Clone, Debug)]
pub struct SpeedupRow {
    /// Routine name.
    pub name: String,
    /// Baseline measurement (absolute cycles).
    pub baseline: Measurement,
    /// Post-pass (intraprocedural) measurement.
    pub postpass: Measurement,
    /// Post-pass with call graph.
    pub postpass_cg: Measurement,
    /// Integrated allocator.
    pub integrated: Measurement,
}

impl SpeedupRow {
    /// Relative cycles of `m` vs. the baseline. A zero-cycle baseline is
    /// clamped to one cycle so the ratio stays finite (a ratio of
    /// garbage-but-finite beats NaN/inf silently spreading into the
    /// reports and CSV).
    pub fn rel(&self, m: &Measurement) -> f64 {
        m.cycles as f64 / self.baseline.cycles.max(1) as f64
    }

    /// Relative memory-operation cycles of `m` vs. the baseline, with the
    /// same zero-denominator clamp as [`SpeedupRow::rel`].
    pub fn rel_mem(&self, m: &Measurement) -> f64 {
        m.mem_cycles as f64 / self.baseline.mem_cycles.max(1) as f64
    }

    /// The three CCM measurements, in the paper's column order.
    pub fn ccm_variants(&self) -> [&Measurement; 3] {
        [&self.postpass, &self.postpass_cg, &self.integrated]
    }

    /// Cycle count of the best (fastest) CCM variant.
    pub fn best_ccm_cycles(&self) -> u64 {
        self.ccm_variants()
            .iter()
            .map(|m| m.cycles)
            .min()
            .expect("three variants")
    }
}

/// Measures one kernel at one CCM size under all four variants, or
/// `Ok(None)` if the kernel does not spill (the paper reports only
/// routines that spill).
///
/// # Errors
///
/// Any stage failure from [`cache::measure_unit`]; additionally a CCM
/// variant whose program checksum diverges from the baseline is a
/// `stage=sim` error (the transformation changed observable behavior).
fn measure_kernel(k: &suite::Kernel, ccm_size: u32) -> Result<Option<SpeedupRow>, PipelineError> {
    let machine = MachineConfig::with_ccm(ccm_size);
    let m = cache::optimized(k)?;
    let baseline = cache::measure_unit(k.name, &m, Variant::Baseline, &machine)?;
    if baseline.spilled_ranges == 0 {
        return Ok(None);
    }
    let postpass = cache::measure_unit(k.name, &m, Variant::PostPass, &machine)?;
    let postpass_cg = cache::measure_unit(k.name, &m, Variant::PostPassCallGraph, &machine)?;
    let integrated = cache::measure_unit(k.name, &m, Variant::Integrated, &machine)?;
    for (v, r) in [
        (Variant::PostPass, &postpass),
        (Variant::PostPassCallGraph, &postpass_cg),
        (Variant::Integrated, &integrated),
    ] {
        if r.checksum.to_bits() != baseline.checksum.to_bits() {
            return Err(PipelineError::new(
                Stage::Sim,
                k.name,
                format!(
                    "changed program output: checksum {} vs baseline {}",
                    r.checksum, baseline.checksum
                ),
            )
            .at(v, ccm_size));
        }
    }
    Ok(Some(SpeedupRow {
        name: k.name.to_string(),
        baseline,
        postpass,
        postpass_cg,
        integrated,
    }))
}

/// Runs the Table 2 experiment at the given CCM size over every kernel
/// that spills: absolute baseline cycles plus relative cycle counts for
/// the three CCM allocation methods.
pub fn speedup_rows(ccm_size: u32) -> Vec<SpeedupRow> {
    speedup_rows_jobs(ccm_size, exec::default_jobs())
}

/// [`speedup_rows`] with an explicit worker count.
pub fn speedup_rows_jobs(ccm_size: u32, jobs: usize) -> Vec<SpeedupRow> {
    speedup_rows_multi(&[ccm_size], jobs)
        .pop()
        .expect("one size requested")
}

/// Runs [`speedup_rows`] for several CCM sizes as one flat work-item pool
/// (kernel × size), returning one row vector per requested size with
/// kernels in suite order. This is how `table3` and the CSV export get
/// both sizes measured concurrently instead of as two serial sweeps.
pub fn speedup_rows_multi(sizes: &[u32], jobs: usize) -> Vec<Vec<SpeedupRow>> {
    let kernels = suite::kernels();
    let mut items: Vec<(usize, u32, suite::Kernel)> = Vec::new();
    for (si, &size) in sizes.iter().enumerate() {
        for k in &kernels {
            items.push((si, size, k.clone()));
        }
    }
    let results = error::par_contained(
        jobs,
        &items,
        |(_, size, k)| format!("speedups {} @ {size} B", k.name),
        |(_, size, k)| measure_kernel(k, *size),
    );
    let mut out: Vec<Vec<SpeedupRow>> = sizes.iter().map(|_| Vec::new()).collect();
    for ((si, _, _), row) in items.iter().zip(results) {
        if let Some(Some(r)) = row {
            out[*si].push(r);
        }
    }
    out
}

/// Joins the two Table 3 row sets **by routine name** and returns the
/// names whose best CCM-variant cycle count improves at 1024 B.
///
/// The spilling set is recomputed per CCM size, so the two vectors need
/// not be positionally aligned — a routine present at one size but not
/// the other is skipped, never mispaired. Duplicate names make the join
/// ambiguous and are a hard error (not a `debug_assert!`: a release
/// build must refuse to compare misaligned rows too).
///
/// # Errors
///
/// Returns a message naming the duplicated routine if either row set
/// contains the same name twice.
pub fn improved_names(r512: &[SpeedupRow], r1024: &[SpeedupRow]) -> Result<Vec<String>, String> {
    let mut at_1024: HashMap<&str, &SpeedupRow> = HashMap::new();
    for r in r1024 {
        if at_1024.insert(r.name.as_str(), r).is_some() {
            return Err(format!("duplicate routine `{}` in the 1024 B rows", r.name));
        }
    }
    let mut seen_512: HashMap<&str, ()> = HashMap::new();
    let mut improved = Vec::new();
    for a in r512 {
        if seen_512.insert(a.name.as_str(), ()).is_some() {
            return Err(format!("duplicate routine `{}` in the 512 B rows", a.name));
        }
        let Some(b) = at_1024.get(a.name.as_str()) else {
            continue; // spills at 512 B but not at 1024 B: nothing to pair
        };
        if b.best_ccm_cycles() < a.best_ccm_cycles() {
            improved.push(a.name.clone());
        }
    }
    Ok(improved)
}

/// Table 3: kernels whose best CCM-variant cycle count improves when the
/// CCM grows from 512 to 1024 bytes. Returns `(rows512, rows1024,
/// improved_names)`.
pub fn table3() -> (Vec<SpeedupRow>, Vec<SpeedupRow>, Vec<String>) {
    table3_jobs(exec::default_jobs())
}

/// [`table3`] with an explicit worker count.
pub fn table3_jobs(jobs: usize) -> (Vec<SpeedupRow>, Vec<SpeedupRow>, Vec<String>) {
    let mut sized = speedup_rows_multi(&[512, 1024], jobs);
    let r1024 = sized.pop().expect("two sizes");
    let r512 = sized.pop().expect("two sizes");
    let improved = improved_names(&r512, &r1024).unwrap_or_else(|e| {
        // A pairing ambiguity poisons only the "improved" summary; the
        // per-size row sets are still reported.
        error::record(PipelineError::new(
            Stage::Exec,
            "table3",
            format!("row pairing: {e}"),
        ));
        Vec::new()
    });
    (r512, r1024, improved)
}

/// Table 4 cell: weighted-average percentage reductions for one
/// algorithm at one CCM size.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Table4Cell {
    /// Percent reduction in total cycles (suite-weighted).
    pub total_pct: f64,
    /// Percent reduction in memory-operation cycles.
    pub mem_pct: f64,
}

/// Computes the Table 4 weighted averages from a set of speedup rows.
/// Weighting follows the paper: total cycles across the suite (big
/// routines dominate), i.e. `100·(1 − Σ cycles_v / Σ cycles_base)`.
pub fn table4_from(rows: &[SpeedupRow]) -> [Table4Cell; 3] {
    let base_total: u64 = rows.iter().map(|r| r.baseline.cycles).sum();
    let base_mem: u64 = rows.iter().map(|r| r.baseline.mem_cycles).sum();
    let mut out = [Table4Cell {
        total_pct: 0.0,
        mem_pct: 0.0,
    }; 3];
    type Pick = for<'a> fn(&'a SpeedupRow) -> &'a Measurement;
    let picks: [Pick; 3] = [|r| &r.postpass, |r| &r.postpass_cg, |r| &r.integrated];
    for (i, pick) in picks.into_iter().enumerate() {
        let v_total: u64 = rows.iter().map(|r| pick(r).cycles).sum();
        let v_mem: u64 = rows.iter().map(|r| pick(r).mem_cycles).sum();
        out[i] = Table4Cell {
            total_pct: 100.0 * (1.0 - v_total as f64 / base_total.max(1) as f64),
            mem_pct: 100.0 * (1.0 - v_mem as f64 / base_mem.max(1) as f64),
        };
    }
    out
}

/// Figure 3/4 row: whole-program relative times for the three methods.
#[derive(Clone, Debug)]
pub struct ProgramRow {
    /// Program name.
    pub name: String,
    /// Baseline cycles / memory-op cycles.
    pub baseline: (u64, u64),
    /// Relative (running time, memory-op time) for post-pass,
    /// post-pass w/ call graph, and integrated, in that order.
    pub rel: [(f64, f64); 3],
}

impl ProgramRow {
    /// Whether any method improved whole-program running time by ≥ 0.5 %.
    pub fn improved(&self) -> bool {
        self.rel.iter().any(|(t, _)| *t < 0.995)
    }
}

/// Runs the Figure 3 (512 B) or Figure 4 (1024 B) experiment over the 13
/// programs.
pub fn figure(ccm_size: u32) -> Vec<ProgramRow> {
    figure_jobs(ccm_size, exec::default_jobs())
}

/// [`figure`] with an explicit worker count.
pub fn figure_jobs(ccm_size: u32, jobs: usize) -> Vec<ProgramRow> {
    let machine = MachineConfig::with_ccm(ccm_size);
    let programs = suite::programs();
    error::par_contained(
        jobs,
        &programs,
        |p| format!("figure {} @ {ccm_size} B", p.name),
        |p| {
            let m = cache::program(p)?;
            let base = cache::measure_unit(p.name, &m, Variant::Baseline, &machine)?;
            let mut rel = [(1.0, 1.0); 3];
            for (i, v) in [
                Variant::PostPass,
                Variant::PostPassCallGraph,
                Variant::Integrated,
            ]
            .into_iter()
            .enumerate()
            {
                let r = cache::measure_unit(p.name, &m, v, &machine)?;
                if r.checksum.to_bits() != base.checksum.to_bits() {
                    return Err(PipelineError::new(
                        Stage::Sim,
                        p.name,
                        format!(
                            "changed program output: checksum {} vs baseline {}",
                            r.checksum, base.checksum
                        ),
                    )
                    .at(v, ccm_size));
                }
                // Same zero-denominator clamp as `SpeedupRow::rel`.
                rel[i] = (
                    r.cycles as f64 / base.cycles.max(1) as f64,
                    r.mem_cycles as f64 / base.mem_cycles.max(1) as f64,
                );
            }
            Ok(ProgramRow {
                name: p.name.to_string(),
                baseline: (base.cycles, base.mem_cycles),
                rel,
            })
        },
    )
    .into_iter()
    .flatten()
    .collect()
}

/// §4.3 ablation result: one memory-hierarchy configuration.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Configuration label.
    pub config: String,
    /// Baseline (spills through the hierarchy) cycles and hit rate.
    pub base_cycles: u64,
    /// Baseline cache hit rate.
    pub base_hit_rate: f64,
    /// CCM (post-pass w/ call graph) cycles and hit rate.
    pub ccm_cycles: u64,
    /// CCM-variant cache hit rate.
    pub ccm_hit_rate: f64,
}

/// Runs the §4.3 "more complex execution models" ablation on a set of
/// spill-heavy kernels: a plain cache, a bigger cache, a cache with a
/// write buffer, and a cache with a victim cache — in each case comparing
/// spilling through the hierarchy against spilling to the CCM.
pub fn ablation() -> Vec<AblationRow> {
    ablation_jobs(exec::default_jobs())
}

/// [`ablation`] with an explicit worker count.
pub fn ablation_jobs(jobs: usize) -> Vec<AblationRow> {
    let kernels = ["fpppp", "twldrv", "jacld", "radf5", "deseco"];
    let mut configs: Vec<(String, CacheConfig)> = Vec::new();
    let base = CacheConfig::small_direct_mapped();
    configs.push(("8K direct-mapped".into(), base.clone()));
    configs.push((
        "32K 2-way (better cache)".into(),
        CacheConfig {
            size: 32 * 1024,
            assoc: 2,
            ..base.clone()
        },
    ));
    configs.push((
        "8K DM + 8-entry write buffer".into(),
        CacheConfig {
            write_buffer: 8,
            ..base.clone()
        },
    ));
    configs.push((
        "8K DM + 4-line victim cache".into(),
        CacheConfig {
            victim_lines: 4,
            ..base
        },
    ));

    // One work item per (configuration, kernel); per-config sums are
    // folded afterward in item order.
    let mut items: Vec<(usize, CacheConfig, &'static str)> = Vec::new();
    for (ci, (_, ccfg)) in configs.iter().enumerate() {
        for name in kernels {
            items.push((ci, ccfg.clone(), name));
        }
    }
    struct Cell {
        config: usize,
        base_cycles: u64,
        ccm_cycles: u64,
        base_hits: (u64, u64),
        ccm_hits: (u64, u64),
    }
    let cells = error::par_contained(
        jobs,
        &items,
        |(ci, _, name)| format!("ablation {} on {}", name, configs[*ci].0),
        |(ci, ccfg, name)| {
            let machine = MachineConfig {
                cache: Some(ccfg.clone()),
                ..MachineConfig::with_ccm(512)
            };
            let k = suite::kernel(name)
                .ok_or_else(|| PipelineError::new(Stage::Parse, *name, "unknown suite kernel"))?;
            let m = cache::optimized(&k)?;
            let b = cache::measure_unit(k.name, &m, Variant::Baseline, &machine)?;
            let c = cache::measure_unit(k.name, &m, Variant::PostPassCallGraph, &machine)?;
            let hits = |r: &Measurement| {
                let h = r.metrics.cache.hits + r.metrics.cache.victim_hits;
                (h, h + r.metrics.cache.misses)
            };
            Ok(Cell {
                config: *ci,
                base_cycles: b.cycles,
                ccm_cycles: c.cycles,
                base_hits: hits(&b),
                ccm_hits: hits(&c),
            })
        },
    );

    let mut rows: Vec<AblationRow> = configs
        .into_iter()
        .map(|(label, _)| AblationRow {
            config: label,
            base_cycles: 0,
            base_hit_rate: 0.0,
            ccm_cycles: 0,
            ccm_hit_rate: 0.0,
        })
        .collect();
    let mut base_hits = vec![(0u64, 0u64); rows.len()];
    let mut ccm_hits = vec![(0u64, 0u64); rows.len()];
    for c in cells.into_iter().flatten() {
        rows[c.config].base_cycles += c.base_cycles;
        rows[c.config].ccm_cycles += c.ccm_cycles;
        base_hits[c.config].0 += c.base_hits.0;
        base_hits[c.config].1 += c.base_hits.1;
        ccm_hits[c.config].0 += c.ccm_hits.0;
        ccm_hits[c.config].1 += c.ccm_hits.1;
    }
    for (i, r) in rows.iter_mut().enumerate() {
        r.base_hit_rate = base_hits[i].0 as f64 / base_hits[i].1.max(1) as f64;
        r.ccm_hit_rate = ccm_hits[i].0 as f64 / ccm_hits[i].1.max(1) as f64;
    }
    rows
}

/// Checker results for one allocated suite module at one configuration.
#[derive(Clone, Debug)]
pub struct CheckRow {
    /// Kernel or program name.
    pub name: String,
    /// The allocation strategy checked.
    pub variant: Variant,
    /// CCM capacity the module was allocated for.
    pub ccm: u32,
    /// Every diagnostic the checker produced.
    pub diags: Vec<checker::Diagnostic>,
}

impl CheckRow {
    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        checker::errors(&self.diags).len()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diags.len() - self.error_count()
    }
}

/// Runs the post-allocation checker over the whole suite (every kernel
/// and every program) under each variant at each CCM size.
pub fn check_suite(sizes: &[u32]) -> Vec<CheckRow> {
    check_suite_jobs(sizes, exec::default_jobs())
}

/// [`check_suite`] with an explicit worker count.
pub fn check_suite_jobs(sizes: &[u32], jobs: usize) -> Vec<CheckRow> {
    // Warm the build cache in parallel, one item per unit…
    let kernels = suite::kernels();
    let programs = suite::programs();
    enum Unit {
        Kernel(suite::Kernel),
        Program(suite::Program),
    }
    let units: Vec<Unit> = kernels
        .into_iter()
        .map(Unit::Kernel)
        .chain(programs.into_iter().map(Unit::Program))
        .collect();
    // A unit whose build fails is recorded and dropped here; every later
    // item indexes into the surviving builds only.
    let built: Vec<(String, std::sync::Arc<iloc::Module>)> = error::par_contained(
        jobs,
        &units,
        |u| {
            let name = match u {
                Unit::Kernel(k) => k.name,
                Unit::Program(p) => p.name,
            };
            format!("build {name}")
        },
        |u| match u {
            Unit::Kernel(k) => Ok((k.name.to_string(), cache::optimized(k)?)),
            Unit::Program(p) => Ok((p.name.to_string(), cache::program(p)?)),
        },
    )
    .into_iter()
    .flatten()
    .collect();
    // …then one work item per (unit, CCM size, variant), enumerated in
    // the same nesting order as the old serial loop so the row order (and
    // every rendering of it) is unchanged.
    let mut items: Vec<(usize, u32, Variant)> = Vec::new();
    for ui in 0..built.len() {
        for &ccm in sizes {
            for v in Variant::ALL {
                items.push((ui, ccm, v));
            }
        }
    }
    error::par_contained(
        jobs,
        &items,
        |(ui, ccm, v)| format!("check {} {v:?} @ {ccm} B", built[*ui].0),
        |(ui, ccm, v)| {
            let (name, module) = &built[*ui];
            let a = cache::allocated(name, module, *v, *ccm)?;
            Ok(CheckRow {
                name: name.clone(),
                variant: *v,
                ccm: *ccm,
                diags: (*a.diags).clone(),
            })
        },
    )
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reports_spilling_routines_with_valid_ratios() {
        let rows = table1();
        assert!(rows.len() >= 10, "need a healthy population of spillers");
        for r in &rows {
            assert!(r.after <= r.before, "{}: compaction grew memory", r.name);
            assert!(r.ratio() > 0.0 && r.ratio() <= 1.0);
        }
        // Aggregate shape: compaction should buy a real reduction.
        let before: u32 = rows.iter().map(|r| r.before).sum();
        let after: u32 = rows.iter().map(|r| r.after).sum();
        assert!(
            (after as f64) < 0.9 * before as f64,
            "aggregate ratio {} not < 0.9",
            after as f64 / before as f64
        );
    }

    #[test]
    fn speedups_have_paper_shape_at_512() {
        let rows = speedup_rows(512);
        assert!(rows.len() >= 10);
        // No CCM variant may ever be slower than baseline.
        for r in &rows {
            for m in r.ccm_variants() {
                assert!(
                    m.cycles <= r.baseline.cycles,
                    "{}: CCM variant slower",
                    r.name
                );
            }
            // Interprocedural post-pass dominates intraprocedural.
            assert!(r.postpass_cg.cycles <= r.postpass.cycles, "{}", r.name);
        }
        // A majority of spilling kernels should see real speedups.
        let improved = rows
            .iter()
            .filter(|r| r.rel(&r.postpass_cg) < 0.995)
            .count();
        assert!(
            improved * 2 >= rows.len(),
            "only {improved}/{} improved",
            rows.len()
        );
        let t4 = table4_from(&rows);
        // Paper: 3-6 % total-cycle reduction, 10-17 % memory-cycle
        // reduction. Accept a generous band around that shape.
        assert!(
            t4[1].total_pct > 1.0 && t4[1].total_pct < 25.0,
            "total reduction {:.1}% out of band",
            t4[1].total_pct
        );
        assert!(
            t4[1].mem_pct > 4.0 && t4[1].mem_pct < 50.0,
            "memory reduction {:.1}% out of band",
            t4[1].mem_pct
        );
        // Memory-cycle reduction always exceeds total-cycle reduction.
        for c in t4 {
            assert!(c.mem_pct >= c.total_pct);
        }
    }
}
