#![warn(clippy::unwrap_used)]
//! `repro`: prints the paper's tables and figures from live runs.
//!
//! Flags select experiments (`--all` runs every experiment); `--jobs N`
//! sets the parallel engine's worker count (default: available
//! parallelism). Each stage prints a wall-clock timing line to stderr.
//! Unknown flags are an error: a misspelled `--tabel2` exits 2 with the
//! usage string instead of silently doing nothing.
//!
//! Failure is deferred, never fatal mid-run: a measurement that errors
//! drops its row and is recorded; every remaining experiment still
//! runs. At the end of the run the aggregated failure report is printed
//! to stderr (and as JSON on stdout with `--errors-json`), and only
//! then does the process exit nonzero. `--sim-budget N` caps every
//! simulation at N instruction steps (the runaway-loop watchdog);
//! `--inject-sweep` fires each registered fault point one at a time and
//! asserts the pipeline survives with the expected structured failure.

use harness::{error, inject_sweep, report};

const USAGE: &str = "usage: repro [--table1] [--table2] [--table3] [--table4] \
     [--figure3] [--figure4] [--ablation] [--sweep] [--design] [--sched] [--multitask] \
     [--check[=json]] [--csv [DIR]] [--fuzz N [--seed S] [--dual-engine]] [--inject-sweep] \
     [--sim-budget N] [--engine ast|decoded] [--bench-json PATH] \
     [--errors-json] [--jobs N] [--all]";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2)
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    usage()
}

#[derive(Default)]
struct Opts {
    table1: bool,
    table2: bool,
    table3: bool,
    table4: bool,
    figure3: bool,
    figure4: bool,
    ablation: bool,
    sweep: bool,
    design: bool,
    sched: bool,
    multitask: bool,
    check: bool,
    check_json: bool,
    csv: Option<std::path::PathBuf>,
    fuzz: Option<usize>,
    fuzz_seed: u64,
    fuzz_dual_engine: bool,
    inject_sweep: bool,
    errors_json: bool,
    bench_json: Option<std::path::PathBuf>,
}

fn parse(args: &[String]) -> Opts {
    let mut o = Opts::default();
    let mut all = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--table1" => o.table1 = true,
            "--table2" => o.table2 = true,
            "--table3" => o.table3 = true,
            "--table4" => o.table4 = true,
            "--figure3" => o.figure3 = true,
            "--figure4" => o.figure4 = true,
            "--ablation" => o.ablation = true,
            "--sweep" => o.sweep = true,
            "--design" => o.design = true,
            "--sched" => o.sched = true,
            "--multitask" => o.multitask = true,
            "--check" => o.check = true,
            "--check=json" => {
                o.check = true;
                o.check_json = true;
            }
            "--inject-sweep" => o.inject_sweep = true,
            "--errors-json" => o.errors_json = true,
            "--sim-budget" => {
                i += 1;
                let v = args
                    .get(i)
                    .unwrap_or_else(|| die("--sim-budget needs a step count"));
                match v.parse::<u64>() {
                    Ok(n) if n > 0 => sim::set_default_max_steps(n),
                    _ => die(&format!("invalid --sim-budget `{v}`")),
                }
            }
            "--csv" => {
                // Optional directory operand; defaults to `results`.
                let dir = match args.get(i + 1) {
                    Some(d) if !d.starts_with('-') => {
                        i += 1;
                        d.clone()
                    }
                    _ => "results".to_string(),
                };
                o.csv = Some(std::path::PathBuf::from(dir));
            }
            "--fuzz" => {
                i += 1;
                let v = args
                    .get(i)
                    .unwrap_or_else(|| die("--fuzz needs a case count"));
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => o.fuzz = Some(n),
                    _ => die(&format!("invalid --fuzz count `{v}`")),
                }
            }
            "--engine" => {
                i += 1;
                let v = args.get(i).unwrap_or_else(|| die("--engine needs a name"));
                match sim::Engine::parse(v) {
                    Some(e) => sim::set_default_engine(e),
                    None => die(&format!("invalid --engine `{v}` (ast|decoded)")),
                }
            }
            "--bench-json" => {
                i += 1;
                let v = args
                    .get(i)
                    .unwrap_or_else(|| die("--bench-json needs a path"));
                o.bench_json = Some(std::path::PathBuf::from(v));
            }
            "--dual-engine" => o.fuzz_dual_engine = true,
            "--seed" => {
                i += 1;
                let v = args.get(i).unwrap_or_else(|| die("--seed needs a value"));
                match v.parse::<u64>() {
                    Ok(s) => o.fuzz_seed = s,
                    Err(_) => die(&format!("invalid --seed `{v}`")),
                }
            }
            "--jobs" => {
                i += 1;
                let v = args.get(i).unwrap_or_else(|| die("--jobs needs a count"));
                match exec::parse_jobs(v) {
                    Ok(n) => exec::set_default_jobs(n),
                    Err(e) => die(&e),
                }
            }
            "--all" => all = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => die(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    if o.fuzz.is_none() && o.fuzz_seed != 0 {
        die("--seed only applies to --fuzz");
    }
    if o.fuzz.is_none() && o.fuzz_dual_engine {
        die("--dual-engine only applies to --fuzz");
    }
    if all {
        o.table1 = true;
        o.table2 = true;
        o.table3 = true;
        o.table4 = true;
        o.figure3 = true;
        o.figure4 = true;
        o.ablation = true;
        o.sweep = true;
        o.design = true;
        o.sched = true;
        o.multitask = true;
        o.check = true;
    }
    o
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let o = parse(&args);
    // Deferred failure: experiments record structured errors and keep
    // going; these track the extra failure sources (checker rows, fuzz
    // cases, sweep verdicts, csv IO) that aren't PipelineErrors.
    let mut deferred_failure = false;

    if o.table1 {
        let rows = exec::timed("repro", "table1", harness::table1);
        println!("{}", report::render_table1(&rows));
    }
    if o.table2 {
        let rows = exec::timed("repro", "table2", || harness::speedup_rows(512));
        println!("{}", report::render_table2(&rows, 512));
    }
    if o.table3 || o.table4 {
        let (r512, r1024, improved) = exec::timed("repro", "table3", harness::table3);
        if o.table3 {
            println!("{}", report::render_table3(&r512, &r1024, &improved));
        }
        if o.table4 {
            println!("{}", report::render_table4(&r512, &r1024));
        }
    }
    if o.figure3 {
        let rows = exec::timed("repro", "figure3", || harness::figure(512));
        println!("{}", report::render_figure(&rows, 512));
    }
    if o.figure4 {
        let rows = exec::timed("repro", "figure4", || harness::figure(1024));
        println!("{}", report::render_figure(&rows, 1024));
    }
    if o.ablation {
        let rows = exec::timed("repro", "ablation", harness::ablation);
        println!("{}", report::render_ablation(&rows));
    }
    if o.sweep {
        let sizes = [64, 128, 256, 512, 1024, 2048, 4096];
        let pts = exec::timed("repro", "sweep", || harness::ccm_sweep(&sizes));
        println!("{}", harness::render_sweep(&pts));
    }
    if o.design {
        let rows = exec::timed("repro", "design", harness::design_ablation);
        println!("{}", harness::render_design(&rows));
    }
    if o.sched {
        let rows = exec::timed("repro", "sched", harness::scheduling_study);
        println!("{}", harness::render_sched(&rows));
    }
    if o.multitask {
        let rows = exec::timed("repro", "multitask", harness::multitask_study);
        println!("{}", harness::render_multitask(&rows));
    }
    if o.check {
        let rows = exec::timed("repro", "check", || harness::check_suite(&[512, 1024]));
        if o.check_json {
            print!("{}", report::render_check_json(&rows));
        } else {
            print!("{}", report::render_check_summary(&rows));
        }
        if rows.iter().any(|r| r.error_count() > 0) {
            deferred_failure = true;
        }
    }
    if let Some(n) = o.fuzz {
        let seed = o.fuzz_seed;
        let cfg = fuzz::OracleConfig {
            dual_engine: o.fuzz_dual_engine,
            ..fuzz::OracleConfig::default()
        };
        let rep = exec::timed("repro", "fuzz", || {
            fuzz::campaign_report(n, seed, exec::default_jobs(), &cfg)
        });
        print!("{}", rep.text);
        if rep.failures > 0 {
            deferred_failure = true;
        }
    }
    if o.inject_sweep {
        let outcomes = exec::timed("repro", "inject-sweep", || {
            inject_sweep::run_sweep(exec::default_jobs())
        });
        print!("{}", inject_sweep::render(&outcomes));
        if outcomes.iter().any(|v| !v.passed) {
            deferred_failure = true;
        }
    }
    if let Some(path) = o.bench_json {
        // Last so the snapshot captures every stage timed above.
        match exec::timed("repro", "bench-json", || {
            harness::bench_json::write_bench_json(&path)
        }) {
            Ok(speedup) => eprintln!(
                "wrote {} (decoded engine geomean speedup: {speedup:.2}x)",
                path.display()
            ),
            Err(e) => {
                eprintln!("bench-json failed: {e}");
                deferred_failure = true;
            }
        }
    }
    if let Some(dir) = o.csv {
        match exec::timed("repro", "csv", || harness::export_all(&dir)) {
            Ok(files) => eprintln!("wrote {} CSV files to {}", files.len(), dir.display()),
            Err(e) => {
                eprintln!("csv export failed: {e}");
                deferred_failure = true;
            }
        }
    }

    // End-of-run aggregation: every structured failure the experiments
    // recorded, sorted (job-count-independent), then the one exit code.
    let errors = error::drain();
    if !errors.is_empty() {
        eprint!("{}", error::render_text(&errors));
    }
    if o.errors_json {
        print!("{}", error::render_json(&errors));
    }
    if deferred_failure || !errors.is_empty() {
        std::process::exit(1);
    }
}
