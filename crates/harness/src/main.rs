//! `repro`: prints the paper's tables and figures from live runs.

use harness::report;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--table1] [--table2] [--table3] [--table4] \
         [--figure3] [--figure4] [--ablation] [--sweep] [--design] [--sched] [--multitask] \
         [--check[=json]] [--csv DIR] [--all]"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let want = |flag: &str| args.iter().any(|a| a == flag || a == "--all");

    if want("--table1") {
        println!("{}", report::render_table1(&harness::table1()));
    }
    if want("--table2") {
        let rows = harness::speedup_rows(512);
        println!("{}", report::render_table2(&rows, 512));
    }
    if want("--table3") || want("--table4") {
        let (r512, r1024, improved) = harness::table3();
        if want("--table3") {
            println!("{}", report::render_table3(&r512, &r1024, &improved));
        }
        if want("--table4") {
            println!("{}", report::render_table4(&r512, &r1024));
        }
    }
    if want("--figure3") {
        println!("{}", report::render_figure(&harness::figure(512), 512));
    }
    if want("--figure4") {
        println!("{}", report::render_figure(&harness::figure(1024), 1024));
    }
    if want("--ablation") {
        println!("{}", report::render_ablation(&harness::ablation()));
    }
    if want("--sweep") {
        let sizes = [64, 128, 256, 512, 1024, 2048, 4096];
        println!("{}", harness::render_sweep(&harness::ccm_sweep(&sizes)));
    }
    if want("--design") {
        println!("{}", harness::render_design(&harness::design_ablation()));
    }
    if want("--sched") {
        println!("{}", harness::render_sched(&harness::scheduling_study()));
    }
    if want("--multitask") {
        println!("{}", harness::render_multitask(&harness::multitask_study()));
    }
    if want("--check") || args.iter().any(|a| a == "--check=json") {
        let rows = harness::check_suite(&[512, 1024]);
        if args.iter().any(|a| a == "--check=json") {
            print!("{}", report::render_check_json(&rows));
        } else {
            print!("{}", report::render_check_summary(&rows));
        }
        if rows.iter().any(|r| r.error_count() > 0) {
            std::process::exit(1);
        }
    }
    if let Some(pos) = args.iter().position(|a| a == "--csv") {
        let dir = args
            .get(pos + 1)
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| std::path::PathBuf::from("results"));
        match harness::export_all(&dir) {
            Ok(files) => eprintln!("wrote {} CSV files to {}", files.len(), dir.display()),
            Err(e) => {
                eprintln!("csv export failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
