//! Text rendering of the experiment results, in the paper's layout.

use std::fmt::Write as _;

use crate::experiments::{
    table4_from, AblationRow, CompactionRow, ProgramRow, SpeedupRow, Table4Cell,
};

/// Renders Table 1 (spill-memory compaction).
pub fn render_table1(rows: &[CompactionRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 1: Spill Memory Requirements and Compaction");
    let _ = writeln!(
        s,
        "{:<12} {:>10} {:>10} {:>14}",
        "Routine", "Before", "After", "After/Before"
    );
    let compacted: Vec<&CompactionRow> = rows.iter().filter(|r| r.after < r.before).collect();
    for r in &compacted {
        let _ = writeln!(
            s,
            "{:<12} {:>10} {:>10} {:>14.2}",
            r.name,
            r.before,
            r.after,
            r.ratio()
        );
    }
    let before: u32 = compacted.iter().map(|r| r.before).sum();
    let after: u32 = compacted.iter().map(|r| r.after).sum();
    let _ = writeln!(
        s,
        "{:<12} {:>10} {:>10} {:>14.2}",
        "TOTAL",
        before,
        after,
        if before == 0 {
            1.0
        } else {
            after as f64 / before as f64
        }
    );
    let uncompacted = rows.len() - compacted.len();
    let _ = writeln!(
        s,
        "({} of {} spilling routines compacted; {} unchanged)",
        compacted.len(),
        rows.len(),
        uncompacted
    );
    s
}

/// Renders Table 2 (speedups at one CCM size).
pub fn render_table2(rows: &[SpeedupRow], ccm: u32) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table 2: Speedups in dynamic cycle counts with {ccm}-byte CCM"
    );
    let _ = writeln!(
        s,
        "{:<12} {:>24} {:>13} {:>13} {:>13}",
        "Routine", "Without CCM", "Post-Pass", "PP w/ CG", "Integrated"
    );
    for r in rows {
        let base = format!("{}({})", r.baseline.cycles, r.baseline.mem_cycles);
        let cell =
            |m: &crate::pipeline::Measurement| format!("{:.2}({:.2})", r.rel(m), r.rel_mem(m));
        let _ = writeln!(
            s,
            "{:<12} {:>24} {:>13} {:>13} {:>13}",
            r.name,
            base,
            cell(&r.postpass),
            cell(&r.postpass_cg),
            cell(&r.integrated)
        );
    }
    s
}

/// Renders Table 3 (routines that improve when the CCM doubles).
pub fn render_table3(r512: &[SpeedupRow], r1024: &[SpeedupRow], improved: &[String]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table 3: Changes in speedups with a 1024-byte CCM (vs 512-byte)"
    );
    let _ = writeln!(
        s,
        "{:<12} {:>24} {:>13} {:>13} {:>13}",
        "Routine", "Without CCM", "Post-Pass", "PP w/ CG", "Integrated"
    );
    for (a, b) in r512.iter().zip(r1024) {
        if !improved.contains(&a.name) {
            continue;
        }
        let base = format!("{}({})", b.baseline.cycles, b.baseline.mem_cycles);
        let cell =
            |m: &crate::pipeline::Measurement| format!("{:.2}({:.2})", b.rel(m), b.rel_mem(m));
        let _ = writeln!(
            s,
            "{:<12} {:>24} {:>13} {:>13} {:>13}",
            b.name,
            base,
            cell(&b.postpass),
            cell(&b.postpass_cg),
            cell(&b.integrated)
        );
    }
    let _ = writeln!(
        s,
        "({} of {} spilling routines speed up with the larger CCM)",
        improved.len(),
        r512.len()
    );
    s
}

/// Renders Table 4 (weighted-average reductions) from both CCM sizes.
pub fn render_table4(r512: &[SpeedupRow], r1024: &[SpeedupRow]) -> String {
    let c512 = table4_from(r512);
    let c1024 = table4_from(r1024);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table 4: Weighted-average percentage reduction in cycles"
    );
    let _ = writeln!(
        s,
        "{:<26} {:>13} {:>13}   {:>13} {:>13}",
        "", "Total 512B", "Total 1024B", "Mem 512B", "Mem 1024B"
    );
    let names = ["Post-pass", "Post-pass w/ Call Graph", "Integrated"];
    for i in 0..3 {
        let _ = writeln!(
            s,
            "{:<26} {:>12.1}% {:>12.1}%   {:>12.1}% {:>12.1}%",
            names[i], c512[i].total_pct, c1024[i].total_pct, c512[i].mem_pct, c1024[i].mem_pct
        );
    }
    s
}

/// Renders a Table 4 computed from one row set (used by tests).
pub fn render_table4_single(cells: &[Table4Cell; 3], ccm: u32) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Weighted-average reduction, {ccm}-byte CCM");
    let names = ["Post-pass", "Post-pass w/ Call Graph", "Integrated"];
    for (n, c) in names.iter().zip(cells) {
        let _ = writeln!(
            s,
            "{:<26} total {:>5.1}%  memory {:>5.1}%",
            n, c.total_pct, c.mem_pct
        );
    }
    s
}

/// Renders Figure 3/4 as a text bar chart of relative whole-program
/// times.
pub fn render_figure(rows: &[ProgramRow], ccm: u32) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Figure {}: Program performance with a {ccm}-byte CCM",
        if ccm <= 512 { 3 } else { 4 }
    );
    let _ = writeln!(
        s,
        "(relative to no-CCM baseline; left: running time, right: memory-op time)"
    );
    let improved: Vec<&ProgramRow> = rows.iter().filter(|r| r.improved()).collect();
    let _ = writeln!(s, "{} of {} programs improved:", improved.len(), rows.len());
    let labels = ["post-pass ", "pp w/ cg  ", "integrated"];
    for r in &improved {
        let _ = writeln!(s, "{} (baseline {} cycles)", r.name, r.baseline.0);
        for (i, (t, m)) in r.rel.iter().enumerate() {
            let bar = |x: f64| {
                let n = ((x - 0.70).max(0.0) / 0.30 * 40.0).round() as usize;
                "#".repeat(n.min(40))
            };
            let _ = writeln!(
                s,
                "  {} {:5.3} |{:<40}| {:5.3} |{:<40}|",
                labels[i],
                t,
                bar(*t),
                m,
                bar(*m)
            );
        }
    }
    s
}

/// Renders the §4.3 ablation table.
pub fn render_ablation(rows: &[AblationRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Section 4.3 ablation: spills through the memory hierarchy vs CCM"
    );
    let _ = writeln!(
        s,
        "(five spill-heavy kernels; post-pass w/ call graph, 512-byte CCM)"
    );
    let _ = writeln!(
        s,
        "{:<30} {:>12} {:>9} {:>12} {:>9} {:>8}",
        "Hierarchy", "base cyc", "hit rate", "ccm cyc", "hit rate", "speedup"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<30} {:>12} {:>8.1}% {:>12} {:>8.1}% {:>7.2}x",
            r.config,
            r.base_cycles,
            100.0 * r.base_hit_rate,
            r.ccm_cycles,
            100.0 * r.ccm_hit_rate,
            r.base_cycles as f64 / r.ccm_cycles as f64
        );
    }
    s
}

/// Renders the suite-wide checker sweep as a text summary: aggregate
/// counts, then every diagnostic of each module that was not clean.
pub fn render_check_summary(rows: &[crate::experiments::CheckRow]) -> String {
    let mut s = String::new();
    let errors: usize = rows.iter().map(|r| r.error_count()).sum();
    let warnings: usize = rows.iter().map(|r| r.warning_count()).sum();
    let dirty = rows.iter().filter(|r| !r.diags.is_empty()).count();
    let _ = writeln!(
        s,
        "Post-allocation checker: {} modules checked, {errors} errors, {warnings} warnings",
        rows.len()
    );
    if dirty == 0 {
        let _ = writeln!(s, "all clean");
        return s;
    }
    for r in rows {
        if r.diags.is_empty() {
            continue;
        }
        let _ = writeln!(
            s,
            "{} [{} / {}B CCM]: {} errors, {} warnings",
            r.name,
            r.variant.label(),
            r.ccm,
            r.error_count(),
            r.warning_count()
        );
        for d in &r.diags {
            let _ = writeln!(s, "  {d}");
        }
    }
    s
}

/// Renders the checker sweep as a JSON array: one object per checked
/// module with its name, variant, CCM size, and diagnostics.
pub fn render_check_json(rows: &[crate::experiments::CheckRow]) -> String {
    let mut s = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\n{{\"name\":\"{}\",\"variant\":\"{:?}\",\"ccm\":{},\"diagnostics\":{}}}",
            r.name,
            r.variant,
            r.ccm,
            checker::render_json(&r.diags).trim_end()
        );
    }
    s.push_str("\n]\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::CompactionRow;

    #[test]
    fn table1_renders_rows_totals_and_counts() {
        let rows = vec![
            CompactionRow {
                name: "alpha".into(),
                before: 100,
                after: 40,
            },
            CompactionRow {
                name: "beta".into(),
                before: 50,
                after: 50,
            },
        ];
        let s = render_table1(&rows);
        assert!(s.contains("alpha"));
        assert!(
            !s.contains("beta "),
            "uncompacted rows are summarized, not listed"
        );
        assert!(s.contains("TOTAL"));
        assert!(s.contains("(1 of 2 spilling routines compacted; 1 unchanged)"));
        assert!(s.contains("0.40"));
    }

    #[test]
    fn figure_marks_improved_programs_only() {
        let rows = vec![
            crate::experiments::ProgramRow {
                name: "fast".into(),
                baseline: (1000, 400),
                rel: [(0.9, 0.8), (0.85, 0.7), (0.9, 0.8)],
            },
            crate::experiments::ProgramRow {
                name: "flat".into(),
                baseline: (1000, 400),
                rel: [(1.0, 1.0); 3],
            },
        ];
        let s = render_figure(&rows, 512);
        assert!(s.contains("1 of 2 programs improved"));
        assert!(s.contains("fast"));
        assert!(!s.contains("flat (baseline"));
        assert!(s.contains("Figure 3"));
        let s4 = render_figure(&rows, 1024);
        assert!(s4.contains("Figure 4"));
    }

    #[test]
    fn ablation_renders_speedup_column() {
        let rows = vec![crate::experiments::AblationRow {
            config: "test cache".into(),
            base_cycles: 2000,
            base_hit_rate: 0.9,
            ccm_cycles: 1000,
            ccm_hit_rate: 0.95,
        }];
        let s = render_ablation(&rows);
        assert!(s.contains("test cache"));
        assert!(s.contains("2.00x"));
        assert!(s.contains("90.0%"));
    }
}
