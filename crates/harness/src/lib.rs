#![warn(missing_docs)]
//! Experiment harness: regenerates every table and figure of the paper.
//!
//! * [`experiments::table1`] — spill-memory compaction (Table 1);
//! * [`experiments::speedup_rows`] — per-routine speedups (Tables 2/3);
//! * [`experiments::table4_from`] — weighted averages (Table 4);
//! * [`experiments::figure`] — whole-program results (Figures 3/4);
//! * [`experiments::ablation`] — §4.3 memory-hierarchy ablation;
//! * [`extensions::ccm_sweep`] / [`extensions::design_ablation`] —
//!   extension studies (CCM sizing curve, design-choice ablations);
//! * [`experiments::check_suite`] — the post-allocation static checker
//!   run across the whole suite (`repro --check`).
//!
//! The `repro` binary prints them: `cargo run --release -p harness -- --all`.

pub mod csv;
pub mod experiments;
pub mod extensions;
pub mod pipeline;
pub mod report;

pub use extensions::{
    ccm_sweep, design_ablation, multitask_study, render_design, render_multitask, render_sched,
    render_sweep, scheduling_study, DesignRow, MultitaskRow, SchedRow, SweepPoint,
};

pub use csv::export_all;
pub use experiments::{
    ablation, check_suite, figure, speedup_rows, table1, table3, table4_from, AblationRow,
    CheckRow, CompactionRow, ProgramRow, SpeedupRow, Table4Cell,
};
pub use pipeline::{allocate_variant, check_allocated, measure, Measurement, Variant};
