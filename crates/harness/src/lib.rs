#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! Experiment harness: regenerates every table and figure of the paper.
//!
//! * [`experiments::table1`] — spill-memory compaction (Table 1);
//! * [`experiments::speedup_rows`] — per-routine speedups (Tables 2/3);
//! * [`experiments::table4_from`] — weighted averages (Table 4);
//! * [`experiments::figure`] — whole-program results (Figures 3/4);
//! * [`experiments::ablation`] — §4.3 memory-hierarchy ablation;
//! * [`extensions::ccm_sweep`] / [`extensions::design_ablation`] —
//!   extension studies (CCM sizing curve, design-choice ablations);
//! * [`experiments::check_suite`] — the post-allocation static checker
//!   run across the whole suite (`repro --check`).
//!
//! The `repro` binary prints them: `cargo run --release -p harness -- --all`.
//!
//! Sweep-shaped experiments fan out over the parallel engine in the
//! `exec` crate (`--jobs N`, default: available parallelism) and share
//! the memoized suite builds in [`cache`], so `repro --all` builds each
//! module once instead of once per table. Results are collected by work
//! item index, never by completion order: any `--jobs` value produces
//! byte-identical output to `--jobs 1`.

pub mod bench_json;
pub mod cache;
pub mod csv;
pub mod error;
pub mod experiments;
pub mod extensions;
pub mod inject_sweep;
pub mod pipeline;
pub mod report;

pub use extensions::{
    ccm_sweep, ccm_sweep_jobs, design_ablation, multitask_study, render_design, render_multitask,
    render_sched, render_sweep, scheduling_study, DesignRow, MultitaskRow, SchedRow, SweepPoint,
};

pub use csv::export_all;
pub use error::{PipelineError, Stage};
pub use experiments::{
    ablation, ablation_jobs, check_suite, check_suite_jobs, figure, figure_jobs, improved_names,
    speedup_rows, speedup_rows_jobs, speedup_rows_multi, table1, table1_jobs, table3, table3_jobs,
    table4_from, AblationRow, CheckRow, CompactionRow, ProgramRow, SpeedupRow, Table4Cell,
};
pub use pipeline::{
    allocate_variant, check_allocated, measure, AllocOutcome, Measurement, Variant,
};
