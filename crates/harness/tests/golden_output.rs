//! Golden-snapshot tests for `repro`'s report output: the rendered
//! tables and figures are compared byte-for-byte against committed
//! expected files. The whole pipeline — suite build, optimization,
//! allocation, CCM promotion, simulation — is deterministic, so any
//! diff here is a real behavior change and must be reviewed, not
//! blindly re-recorded.
//!
//! To re-record after an intentional change:
//! `GOLDEN_UPDATE=1 cargo test -p harness --test golden_output`

use std::path::PathBuf;
use std::process::Command;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(args: &[&str], name: &str) {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .args(["--jobs", "2"])
        .output()
        .expect("cannot spawn repro");
    assert!(
        out.status.success(),
        "repro {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let got = String::from_utf8(out.stdout).expect("output is UTF-8");
    let path = golden_path(name);
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert!(
        got == want,
        "repro {args:?} diverged from {} — if the change is intentional, \
         re-record with GOLDEN_UPDATE=1\n--- expected ---\n{want}\n--- got ---\n{got}",
        path.display()
    );
}

#[test]
fn table1_matches_golden() {
    check_golden(&["--table1"], "table1.txt");
}

#[test]
fn table3_matches_golden() {
    check_golden(&["--table3"], "table3.txt");
}

#[test]
fn figure3_matches_golden() {
    check_golden(&["--figure3"], "figure3.txt");
}
