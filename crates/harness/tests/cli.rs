//! CLI contract tests for the harness binaries: misspelled or malformed
//! flags must be rejected with a usage message and a nonzero exit, never
//! silently ignored (the old `repro` exited 0 having done nothing on
//! `--tabel2`).

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> (i32, String, String) {
    let out = Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("cannot spawn {bin}: {e}"));
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn repro_rejects_unknown_flags() {
    let repro = env!("CARGO_BIN_EXE_repro");
    let (code, _, err) = run(repro, &["--tabel2"]);
    assert_eq!(code, 2, "misspelled flag must exit 2");
    assert!(err.contains("unknown argument `--tabel2`"), "stderr: {err}");
    assert!(err.contains("usage:"), "stderr: {err}");
}

#[test]
fn repro_with_no_args_prints_usage_and_fails() {
    let (code, out, err) = run(env!("CARGO_BIN_EXE_repro"), &[]);
    assert_eq!(code, 2);
    assert!(out.is_empty());
    assert!(err.contains("usage:"));
}

#[test]
fn repro_rejects_bad_jobs_values() {
    let repro = env!("CARGO_BIN_EXE_repro");
    for args in [
        &["--jobs", "0"][..],
        &["--jobs", "many"][..],
        &["--jobs"][..],
    ] {
        let (code, _, err) = run(repro, args);
        assert_eq!(code, 2, "{args:?} must exit 2");
        assert!(err.contains("--jobs"), "{args:?} stderr: {err}");
    }
}

#[test]
fn repro_help_exits_zero() {
    let (code, out, _) = run(env!("CARGO_BIN_EXE_repro"), &["--help"]);
    assert_eq!(code, 0);
    assert!(out.contains("usage:"));
    assert!(out.contains("--jobs"));
}

#[test]
fn probe_rejects_unknown_flags() {
    let (code, _, err) = run(env!("CARGO_BIN_EXE_probe"), &["--bogus"]);
    assert_eq!(code, 2);
    assert!(err.contains("unknown argument"), "stderr: {err}");
}

#[test]
fn ccmc_rejects_unknown_flags_and_bad_jobs() {
    let ccmc = env!("CARGO_BIN_EXE_ccmc");
    let (code, _, err) = run(ccmc, &["--bogus"]);
    assert_eq!(code, 2);
    assert!(err.contains("unknown argument"), "stderr: {err}");
    let (code, _, err) = run(ccmc, &["--jobs", "0"]);
    assert_eq!(code, 2);
    assert!(err.contains("--jobs"), "stderr: {err}");
}
