#!/usr/bin/env bash
# Local CI: formatting, lints, then the tier-1 build-and-test gate.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release"
cargo build --release

echo "== tier-1: cargo test -q"
cargo test -q

echo "CI green."
