#!/usr/bin/env bash
# Local CI: formatting, lints, then the tier-1 build-and-test gate.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release"
cargo build --release

echo "== tier-1: cargo test -q"
cargo test -q

echo "== release smoke: repro --table1 --check --jobs 2"
# Exercises the parallel engine end to end in release mode (the unit
# tests above run debug-mode): a table over the memoized build cache,
# the full 616-config checker sweep through par_map, and the strict
# argument parser, all under a small worker count.
cargo run --release -q -p harness --bin repro -- --table1 --check --jobs 2 > /dev/null

echo "CI green."
