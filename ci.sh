#!/usr/bin/env bash
# Local CI: formatting, lints, then the tier-1 build-and-test gate.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release"
cargo build --release

echo "== tier-1: cargo test -q"
cargo test -q

echo "== release smoke: repro --table1 --check --jobs 2"
# Exercises the parallel engine end to end in release mode (the unit
# tests above run debug-mode): a table over the memoized build cache,
# the full 616-config checker sweep through par_map, and the strict
# argument parser, all under a small worker count.
cargo run --release -q -p harness --bin repro -- --table1 --check --jobs 2 > /dev/null

echo "== fuzz smoke: repro --fuzz 64 --seed 1 --jobs 2"
# Fixed-seed differential fuzzing campaign: every generated module must
# produce bit-identical checksums under all allocation variants, pass
# the post-allocation checker, and never run slower than baseline. The
# fixed seed keeps CI deterministic; exit 1 means a minimized
# reproducer was printed — file it under tests/corpus/.
cargo run --release -q -p harness --bin repro -- --fuzz 64 --seed 1 --jobs 2

echo "== dual-engine smoke: repro --table1 under ast vs decoded (byte-identical)"
# The decoded engine's equivalence contract at the output level: the
# paper's headline table must be byte-identical whichever engine
# simulated it. Stdout only — stderr carries timing lines that differ.
diff <(cargo run --release -q -p harness --bin repro -- --table1 --engine ast --jobs 2 2> /dev/null) \
     <(cargo run --release -q -p harness --bin repro -- --table1 --engine decoded --jobs 2 2> /dev/null)

echo "== decoded-engine fuzz smoke: repro --fuzz 64 --seed 1 --dual-engine --jobs 2"
# The same fixed-seed campaign with every simulation run under BOTH
# engines; any divergence in values, metrics, or traps is an
# engine-mismatch failure.
cargo run --release -q -p harness --bin repro -- --fuzz 64 --seed 1 --dual-engine --jobs 2

echo "== inject smoke: repro --inject-sweep --jobs 2"
# Fault-injection sweep in release mode: arm each registered fault
# point in turn and assert the pipeline survives with the expected
# structured failure (degradation with identical output, contained
# panics, detected-and-evicted cache corruption, ...). Exit 1 means a
# failure path regressed.
cargo run --release -q -p harness --bin repro -- --inject-sweep --jobs 2

echo "== panic containment: fault_injection tests (release)"
# Includes the fixed-seed exec containment test: a deterministic subset
# of work items panics and the failure report must be byte-identical at
# jobs=1, jobs=4, and jobs=9 (the same suite runs debug-mode under
# `cargo test` above).
cargo test -q --release --test fault_injection > /dev/null

echo "== corpus replay"
# Re-run every archived fuzzer finding through the full oracle (the
# same test runs in debug mode under `cargo test` above; this one uses
# the release-built deps for speed and as a second optimization level).
cargo test -q --release --test corpus_replay > /dev/null

echo "CI green."
