#![warn(missing_docs)]
//! # ccm-repro — Compiler-Controlled Memory
//!
//! A full reproduction of *Compiler-Controlled Memory* (Keith D. Cooper
//! and Timothy J. Harvey, ASPLOS VIII, 1998) as a Rust workspace. This
//! facade crate re-exports every subsystem:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`ir`] | `iloc` | the ILOC-like IR, builder, parser, verifier |
//! | [`analysis`] | `analysis` | dataflow, dominators, liveness, SSA, loops, call graph |
//! | [`opt`] | `opt` | SCCP, GVN, DCE, peephole, unrolling, pass pipeline |
//! | [`regalloc`] | `regalloc` | the Chaitin-Briggs allocator with CCM hooks |
//! | [`ccm`] | `ccm` | **the paper's contribution**: slot analysis, compaction, post-pass and integrated CCM allocation |
//! | [`sim`] | `sim` | the cycle-accurate machine (mem = 2 cycles, CCM = 1) + cache models |
//! | [`suite`] | `suite` | the synthetic workload suite (paper-analog kernels and programs) |
//! | [`harness`] | `harness` | the experiments regenerating Tables 1–4 and Figures 3/4 |
//!
//! See `examples/quickstart.rs` for the end-to-end flow, and run
//! `cargo run --release -p harness -- --all` to regenerate the paper's
//! evaluation.

pub use analysis;
pub use ccm;
pub use harness;
pub use iloc as ir;
pub use opt;
pub use regalloc;
pub use sim;
pub use suite;
