//! Spill promotion, instruction by instruction: compile a real suite
//! kernel and print its code before and after the post-pass CCM
//! allocator rewrites the spill instructions, then show the
//! interprocedural high-water-mark convention on a whole program.
//!
//! Run with: `cargo run --release --example spill_promotion`

use iloc::SpillKind;
use regalloc::AllocConfig;
use sim::MachineConfig;

fn main() {
    // Compile the radf5 kernel (FFTPACK radix-5 butterfly analog).
    let k = suite::kernel("radf5").expect("kernel exists");
    let mut m = suite::build_optimized(&k);
    regalloc::allocate_module(&mut m, &AllocConfig::default());

    // Show a window of spill code from the butterfly routine.
    let pass = m.function("pass").expect("routine exists");
    println!("== spill code in `pass` before promotion ==");
    let mut shown = 0;
    'outer: for b in &pass.blocks {
        for i in &b.instrs {
            if i.spill != SpillKind::None {
                println!("    {}", iloc::print::format_instr(pass, i));
                shown += 1;
                if shown >= 8 {
                    break 'outer;
                }
            }
        }
    }
    println!(
        "  ({} spill instructions total, {} bytes of stack spill space)\n",
        pass.spill_instr_count(),
        pass.frame.spill_bytes()
    );

    // Run the post-pass allocator with a 512-byte CCM.
    let mut promoted = m.clone();
    let stats = ccm::postpass_promote(
        &mut promoted,
        &ccm::PostpassConfig {
            ccm_size: 512,
            interprocedural: true,
        },
    );
    let pass2 = promoted.function("pass").expect("routine exists");
    println!("== the same instructions after promotion ==");
    let mut shown = 0;
    'outer2: for b in &pass2.blocks {
        for i in &b.instrs {
            if i.spill != SpillKind::None {
                println!("    {}", iloc::print::format_instr(pass2, i));
                shown += 1;
                if shown >= 8 {
                    break 'outer2;
                }
            }
        }
    }
    for s in &stats {
        if s.promoted + s.heavyweight > 0 {
            println!(
                "  {}: {} slots promoted, {} heavyweight, CCM high water {} bytes",
                s.name, s.promoted, s.heavyweight, s.high_water
            );
        }
    }

    // Measure the effect.
    let machine = MachineConfig::with_ccm(512);
    let (v0, m0) = sim::run_module(&m, machine.clone(), "main").expect("baseline");
    let (v1, m1) = sim::run_module(&promoted, machine, "main").expect("promoted");
    assert_eq!(v0, v1);
    println!(
        "\ncycles: {} -> {} ({:.1}% faster); memory-op cycles: {} -> {}",
        m0.cycles,
        m1.cycles,
        100.0 * (1.0 - m1.cycles as f64 / m0.cycles as f64),
        m0.mem_op_cycles,
        m1.mem_op_cycles
    );

    // Interprocedural convention on a whole program: callees get the
    // bottom of the CCM, callers place call-crossing slots above their
    // callees' high-water marks.
    println!("\n== interprocedural high-water marks (program `turb3d`) ==");
    let p = suite::program("turb3d").expect("program exists");
    let mut pm = suite::build_program(&p);
    regalloc::allocate_module(&mut pm, &AllocConfig::default());
    let stats = ccm::postpass_promote(
        &mut pm,
        &ccm::PostpassConfig {
            ccm_size: 512,
            interprocedural: true,
        },
    );
    for s in stats.iter().filter(|s| s.promoted > 0).take(12) {
        println!(
            "  {:<22} promoted {:>3}  heavyweight {:>3}  high water {:>4} B",
            s.name, s.promoted, s.heavyweight, s.high_water
        );
    }
}
