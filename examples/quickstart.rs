//! Quickstart: build a spill-heavy function, allocate registers, promote
//! the spills into a compiler-controlled memory, and measure the saving.
//!
//! Run with: `cargo run --release --example quickstart`

use iloc::builder::FuncBuilder;
use iloc::{Module, RegClass};
use regalloc::AllocConfig;
use sim::MachineConfig;

fn main() {
    // 1. Build a function whose 40 floating-point values are all live at
    //    once — more than the machine's 32 FP registers.
    let width = 40;
    let mut fb = FuncBuilder::new("main");
    fb.set_ret_classes(&[RegClass::Fpr]);
    let vals: Vec<_> = (0..width).map(|i| fb.loadf(i as f64 * 0.25)).collect();
    let mut acc = vals[width - 1];
    for v in vals[..width - 1].iter().rev() {
        acc = fb.fadd(acc, *v);
    }
    fb.ret(&[acc]);
    let mut module = Module::new();
    module.push_function(fb.finish());
    module.verify().expect("well-formed input");

    // 2. Conventional Chaitin-Briggs allocation: spills go to the stack.
    let mut baseline = module.clone();
    let stats = regalloc::allocate_module(&mut baseline, &AllocConfig::default());
    println!("allocator spilled {} live ranges", stats.total_spilled());

    let machine = MachineConfig::with_ccm(512);
    let (v0, m0) = sim::run_module(&baseline, machine.clone(), "main").expect("baseline runs");
    println!(
        "baseline:  {:>6} cycles ({} in memory ops)   result = {}",
        m0.cycles, m0.mem_op_cycles, v0.floats[0]
    );

    // 3. The paper's post-pass CCM allocator: redirect those same spill
    //    instructions into a 512-byte on-chip compiler-controlled memory.
    let mut promoted = baseline.clone();
    let promo = ccm::postpass_promote(
        &mut promoted,
        &ccm::PostpassConfig {
            ccm_size: 512,
            interprocedural: true,
        },
    );
    println!(
        "post-pass promoted {} spill slots into the CCM (high water {} bytes)",
        promo[0].promoted, promo[0].high_water
    );

    let (v1, m1) = sim::run_module(&promoted, machine.clone(), "main").expect("promoted runs");
    println!(
        "with CCM:  {:>6} cycles ({} in memory ops)   result = {}",
        m1.cycles, m1.mem_op_cycles, v1.floats[0]
    );
    assert_eq!(v0, v1, "promotion must preserve results");

    // 4. Or do it in one step with the integrated allocator (§3.2).
    let mut integrated = module.clone();
    let (_, ccm_stats, _) =
        ccm::allocate_module_integrated(&mut integrated, &AllocConfig::default(), 512);
    let (v2, m2) = sim::run_module(&integrated, machine, "main").expect("integrated runs");
    println!(
        "integrated: {:>5} cycles, {} spills in CCM, {} heavyweight   result = {}",
        m2.cycles, ccm_stats.ccm_spills, ccm_stats.heavyweight_spills, v2.floats[0]
    );
    assert_eq!(v0, v2);

    println!(
        "\nspeedup from CCM spilling: {:.1}% of cycles, {:.1}% of memory-op cycles",
        100.0 * (1.0 - m1.cycles as f64 / m0.cycles as f64),
        100.0 * (1.0 - m1.mem_op_cycles as f64 / m0.mem_op_cycles as f64),
    );
}
