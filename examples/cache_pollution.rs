//! Cache pollution by spill code (§2.3 and §4.3 of the paper).
//!
//! "The cache is the wrong place to spill": spill traffic inserted after
//! the cache-oriented transformations disturbs the cache state those
//! transformations planned. This example runs a spill-heavy kernel on a
//! modeled memory hierarchy and compares spilling through the cache
//! against spilling to the CCM, across the §4.3 design alternatives
//! (bigger cache, write buffer, victim cache).
//!
//! Run with: `cargo run --release --example cache_pollution`

use regalloc::AllocConfig;
use sim::{CacheConfig, MachineConfig};

fn run(m: &iloc::Module, cache: CacheConfig) -> sim::Metrics {
    let cfg = MachineConfig {
        cache: Some(cache),
        ..MachineConfig::with_ccm(512)
    };
    let (_, metrics) = sim::run_module(m, cfg, "main").expect("kernel runs");
    metrics
}

fn main() {
    let k = suite::kernel("twldrv").expect("kernel exists");
    let m = suite::build_optimized(&k);

    // Baseline: spills through the cache hierarchy.
    let mut baseline = m.clone();
    regalloc::allocate_module(&mut baseline, &AllocConfig::default());

    // CCM: same allocation, spills redirected to the scratchpad.
    let mut promoted = baseline.clone();
    ccm::postpass_promote(
        &mut promoted,
        &ccm::PostpassConfig {
            ccm_size: 512,
            interprocedural: true,
        },
    );

    let configs: Vec<(&str, CacheConfig)> = vec![
        ("8K direct-mapped", CacheConfig::small_direct_mapped()),
        (
            "32K 2-way",
            CacheConfig {
                size: 32 * 1024,
                assoc: 2,
                ..CacheConfig::small_direct_mapped()
            },
        ),
        (
            "8K DM + write buffer",
            CacheConfig {
                write_buffer: 8,
                ..CacheConfig::small_direct_mapped()
            },
        ),
        (
            "8K DM + victim cache",
            CacheConfig {
                victim_lines: 4,
                ..CacheConfig::small_direct_mapped()
            },
        ),
    ];

    println!("twldrv kernel: spills through cache vs. spills to CCM\n");
    println!(
        "{:<22} {:>12} {:>9} {:>12} {:>9} {:>9}",
        "hierarchy", "cache cyc", "hit rate", "ccm cyc", "hit rate", "speedup"
    );
    for (name, cache) in configs {
        let b = run(&baseline, cache.clone());
        let c = run(&promoted, cache);
        println!(
            "{:<22} {:>12} {:>8.1}% {:>12} {:>8.1}% {:>8.2}x",
            name,
            b.cycles,
            100.0 * b.cache.hit_rate(),
            c.cycles,
            100.0 * c.cache.hit_rate(),
            b.cycles as f64 / c.cycles as f64
        );
    }

    println!(
        "\nThe paper's §4.3 predictions hold: a better cache or a write \
         buffer\nnarrows the CCM's advantage but leaves spill traffic on the \
         path to\nmemory; the victim cache barely helps, because spill slots \
         are re-read\ntoo quickly to survive there."
    );
}
