//! Drive the pipeline from textual ILOC: parse `assets/dotprod.iloc`,
//! optimize, allocate under register pressure, promote spills to the CCM,
//! and execute — comparing against the expected dot product.
//!
//! Run with: `cargo run --release --example from_text`

use regalloc::AllocConfig;
use sim::MachineConfig;

fn main() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/assets/dotprod.iloc");
    let text = std::fs::read_to_string(path).expect("asset exists");
    let mut m = iloc::parse_module(&text).expect("parses");
    m.verify().expect("verifies");
    println!(
        "parsed {} functions, {} instructions",
        m.functions.len(),
        m.instr_count()
    );

    opt::optimize_module(&mut m, &opt::OptOptions::default());
    println!("after optimization: {} instructions", m.instr_count());

    // Allocate with only 4 registers per class so the kernel spills, then
    // promote into a small CCM.
    let cfg = AllocConfig::tiny(4);
    let stats = regalloc::allocate_module(&mut m, &cfg);
    println!(
        "spilled {} live ranges under 4 registers/class",
        stats.total_spilled()
    );
    assert!(stats.total_spilled() > 0, "the unrolled loop must spill");
    let promo = ccm::postpass_promote(
        &mut m,
        &ccm::PostpassConfig {
            ccm_size: 256,
            interprocedural: true,
        },
    );
    let promoted: usize = promo.iter().map(|p| p.promoted).sum();
    println!("promoted {promoted} spill slots into a 256-byte CCM");

    let (vals, metrics) = sim::run_module(&m, MachineConfig::with_ccm(256), "main").expect("runs");
    // Σ_{i<32} (i·0.5)·2.0 = Σ i = 496.
    println!(
        "dot product = {} ({} cycles, {} CCM ops)",
        vals.floats[0], metrics.cycles, metrics.ccm_ops
    );
    assert_eq!(vals.floats[0], 496.0);
}
